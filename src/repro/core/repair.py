"""EAS Step 3: search and repair (paper Sec. 5 Step 3, Fig. 4).

When the level-based schedule misses deadlines, two greedy move kinds
iteratively reduce the misses:

* **Local task swapping (LTS):** a *critical* task swaps execution order
  with a *non-critical* task scheduled earlier on the same PE.  Mapping
  is untouched, so neither computation nor communication energy changes;
  only timing moves.
* **Global task migration (GTM):** a critical task migrates to another
  PE; candidate destinations are tried in increasing order of the
  (computation + incident communication) energy the task would cost
  there, so the cheapest repair in energy terms is found first.

A task is critical when it misses its own deadline or is an ancestor of
a task that does.  A move is accepted only if the miss metric — the pair
``(number of missed deadlines, total tardiness)`` compared
lexicographically — strictly decreases; otherwise it is rolled back
(Fig. 4's accept/reject boxes).  Strict decrease plus a round bound make
the procedure converge.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro import obs
from repro.core.comm import incoming_comm_energy, outgoing_comm_energy
from repro.core.increbuild import IncrementalRebuilder
from repro.core.rebuild import rebuild_schedule
from repro.errors import InfeasibleOrderError, RoutingError
from repro.schedule.schedule import Schedule

MissMetric = Tuple[int, float]


@dataclass
class RepairConfig:
    """Bounds and policies of the search-and-repair loop."""

    max_rounds: int = 64
    #: maximum GTM migrations attempted per round before giving up.
    max_migrations_per_round: int = 256
    #: ``None`` keeps the paper-literal deterministic move orderings;
    #: an integer seeds a private RNG that *jitters* the criticality and
    #: destination rankings — the diversification knob the multi-start
    #: portfolio uses.  Never reads global ``random`` state.
    seed: Optional[int] = None
    #: evaluate candidate moves with the incremental rebuild engine
    #: (``core/increbuild.py``): prefix reuse, early abort, rejected-move
    #: memoization.  ``False`` (CLI ``--no-incremental-repair``) keeps
    #: the paper-literal full rebuild per candidate.  Both paths accept
    #: the exact same move sequence; only runtime differs.
    use_incremental: bool = True
    #: serve Fig. 3 path probes from the version-keyed path-table cache
    #: (``schedule/overlay.py``) inside every candidate rebuild.
    #: ``False`` (CLI ``--no-path-cache``) keeps the literal
    #: re-merge-per-probe reference path; schedules are bit-identical
    #: either way.
    use_path_cache: bool = True
    #: debug: cross-check every incremental evaluation against a full
    #: rebuild (byte-comparing serializations).  Slow; used by the
    #: equivalence harness in ``tests/test_increbuild.py``.
    selfcheck: bool = False
    #: tasks no move may touch: they are never swapped, never migrated
    #: and never used as a swap partner.  Degraded-mode recovery freezes
    #: the salvaged pre-fault prefix this way; empty on a normal repair.
    frozen: FrozenSet[str] = frozenset()
    #: custom candidate evaluator ``(mapping, orders) -> Schedule | None``
    #: replacing the built-in rebuild engines (``None`` = rejected move).
    #: Degraded-mode recovery supplies one that rebuilds over the
    #: degraded platform with the salvaged prefix pre-seeded; normal
    #: repairs leave it None.
    rebuilder: Optional[Callable[[Dict[str, int], Dict[int, List[str]]], Optional[Schedule]]] = None


@dataclass
class RepairReport:
    """What the repair loop did (for the Sec. 6.1 runtime discussion)."""

    rounds: int = 0
    swaps_tried: int = 0
    swaps_accepted: int = 0
    migrations_tried: int = 0
    migrations_accepted: int = 0
    initial_misses: int = 0
    final_misses: int = 0
    initial_energy: float = 0.0
    final_energy: float = 0.0

    @property
    def fixed_all(self) -> bool:
        return self.final_misses == 0

    def __repr__(self) -> str:
        return (
            f"RepairReport(rounds={self.rounds}, swaps={self.swaps_accepted}/"
            f"{self.swaps_tried}, migrations={self.migrations_accepted}/"
            f"{self.migrations_tried}, misses {self.initial_misses}->{self.final_misses})"
        )


def miss_metric(schedule: Schedule) -> MissMetric:
    """(number of deadline misses, total tardiness) — lower is better."""
    return (len(schedule.deadline_misses()), schedule.total_tardiness())


def critical_tasks(schedule: Schedule) -> Set[str]:
    """Tasks that miss their deadline or feed a task that does.

    Matches the paper's note that a critical task "may not necessarily
    have a specified deadline, but it causes one of its descendant tasks
    to miss its deadline".
    """
    critical: Set[str] = set()
    for miss in schedule.deadline_misses():
        critical.add(miss)
        critical.update(schedule.ctg.ancestors(miss))
    return critical


class _MoveEvaluator:
    """Candidate-move evaluation behind one interface for both modes.

    ``use_incremental`` picks between the paper-literal full rebuild per
    candidate and the :class:`IncrementalRebuilder` dirty-cone replay.
    Both return the identical schedule for a feasible candidate; the
    incremental mode may also return ``None`` for candidates it *proves*
    cannot beat the current metric (early abort, memoized rejection) —
    exactly the candidates the caller would reject anyway, so the
    accepted-move sequence is mode-independent.

    Also owns the per-incumbent-mapping destination ranking cache:
    ``_destinations_by_energy`` depends only on (task, mapping), so GTM
    passes between accepted migrations can reuse the rankings instead of
    recomputing every incident-edge energy sum per pass.
    """

    def __init__(
        self,
        schedule: Schedule,
        mapping: Dict[str, int],
        orders: Dict[int, List[str]],
        cfg: RepairConfig,
    ) -> None:
        self._engine: Optional[IncrementalRebuilder] = None
        self._use_path_cache = cfg.use_path_cache
        self._rebuilder = cfg.rebuilder
        if cfg.use_incremental and cfg.rebuilder is None:
            self._engine = IncrementalRebuilder(
                schedule.ctg,
                schedule.acg,
                mapping,
                orders,
                algorithm=schedule.algorithm,
                selfcheck=cfg.selfcheck,
                use_path_cache=cfg.use_path_cache,
            )
        self._dest_cache: Dict[str, List[int]] = {}

    def evaluate(
        self,
        schedule: Schedule,
        mapping: Dict[str, int],
        orders: Dict[int, List[str]],
        metric: MissMetric,
    ) -> Optional[Schedule]:
        if self._rebuilder is not None:
            return self._rebuilder(mapping, orders)
        if self._engine is None:
            return _try_rebuild(
                schedule, mapping, orders, use_path_cache=self._use_path_cache
            )
        return self._engine.evaluate(mapping, orders, metric)

    def promote(self) -> None:
        """The last evaluated candidate was accepted as the new incumbent."""
        if self._engine is not None:
            self._engine.promote()

    def destinations(
        self, schedule: Schedule, task: str, mapping: Dict[str, int]
    ) -> List[int]:
        ranked = self._dest_cache.get(task)
        if ranked is None:
            ranked = _destinations_by_energy(schedule, task, mapping)
            self._dest_cache[task] = ranked
        return ranked

    def invalidate_destinations(self) -> None:
        """An accepted migration changed the mapping; rankings are stale."""
        self._dest_cache.clear()


def search_and_repair(
    schedule: Schedule,
    config: Optional[RepairConfig] = None,
) -> Tuple[Schedule, RepairReport]:
    """Fig. 4's repair flow: alternate LTS passes and GTM moves.

    Returns the best schedule found (the input schedule itself when no
    move helps) and a :class:`RepairReport`.  The returned schedule may
    still miss deadlines if the instance is simply infeasible.
    """
    cfg = config or RepairConfig()
    report = RepairReport()
    current = schedule
    metric = miss_metric(current)
    report.initial_misses = metric[0]
    report.initial_energy = current.total_energy()

    mapping = dict(current.mapping())
    orders = {pe: list(tasks) for pe, tasks in current.pe_order().items()}
    rng = random.Random(cfg.seed) if cfg.seed is not None else None
    evaluator = _MoveEvaluator(current, mapping, orders, cfg)

    ins = obs.get()
    round_counter = ins.metrics.counter("repair.rounds")
    with ins.tracer.span(
        "search_and_repair", ctg=schedule.ctg.name, initial_misses=report.initial_misses
    ) as span:
        while metric[0] > 0 and report.rounds < cfg.max_rounds:
            report.rounds += 1
            round_counter.inc()
            current, mapping, orders, metric, lts_improved = _lts_pass(
                current, mapping, orders, metric, report, cfg, evaluator, rng
            )
            if metric[0] == 0:
                break
            current, mapping, orders, metric, gtm_improved = _gtm_pass(
                current, mapping, orders, metric, report, cfg, evaluator, rng
            )
            if not lts_improved and not gtm_improved:
                break  # fixed point: no move helps
        span.set_attribute("rounds", report.rounds)
        span.set_attribute("final_misses", metric[0])

    report.final_misses = metric[0]
    report.final_energy = current.total_energy()
    return current, report


# -- multi-start portfolio ------------------------------------------------------


@dataclass(frozen=True)
class StartOutcome:
    """How one seeded start of the portfolio ended."""

    start: int
    seed: Optional[int]
    misses: int
    tardiness: float
    energy: float
    report: RepairReport

    @property
    def feasible(self) -> bool:
        return self.misses == 0


@dataclass
class PortfolioReport:
    """Outcome of :func:`multistart_search_and_repair` across all starts."""

    outcomes: List[StartOutcome] = field(default_factory=list)
    winner: int = 0
    jobs: int = 1

    @property
    def winner_outcome(self) -> StartOutcome:
        return self.outcomes[self.winner]

    @property
    def winner_report(self) -> RepairReport:
        return self.winner_outcome.report

    def describe(self) -> str:
        w = self.winner_outcome
        seed = "paper-order" if w.seed is None else f"seed {w.seed}"
        return (
            f"repair portfolio: {len(self.outcomes)} start(s) x {self.jobs} job(s), "
            f"winner start {w.start} ({seed}): misses "
            f"{w.report.initial_misses}->{w.misses}, energy {w.energy:.6g} nJ"
        )


@dataclass(frozen=True)
class _StartPayload:
    """Picklable description of one portfolio start (shared-nothing)."""

    ctg: object
    acg: object
    mapping: Dict[str, int]
    orders: Dict[int, List[str]]
    algorithm: str
    config: RepairConfig
    start: int


def _portfolio_start(payload: "_StartPayload") -> Dict[str, object]:
    """Worker entry: rebuild the base schedule, repair it, ship the outcome.

    Runs inside a fresh disabled bundle so worker-side counters never
    race the parent registry; the registry travels home in the result
    and is merged by the parent in start order.
    """
    bundle = obs.Instrumentation.disabled()
    with obs.activate(bundle):
        schedule = rebuild_schedule(
            payload.ctg, payload.acg, payload.mapping, payload.orders,
            algorithm=payload.algorithm,
            use_path_cache=payload.config.use_path_cache,
        )
        repaired, report = search_and_repair(schedule, payload.config)
        metric = miss_metric(repaired)
    return {
        "start": payload.start,
        "seed": payload.config.seed,
        "mapping": repaired.mapping(),
        "orders": repaired.pe_order(),
        "misses": metric[0],
        "tardiness": metric[1],
        "energy": repaired.total_energy(),
        "report": report,
        "metrics": bundle.metrics,
    }


def multistart_search_and_repair(
    schedule: Schedule,
    starts: int = 4,
    jobs: Optional[int] = None,
    config: Optional[RepairConfig] = None,
    base_seed: int = 0,
) -> Tuple[Schedule, PortfolioReport]:
    """Run ``starts`` seeded repair portfolios and keep the best schedule.

    Start 0 always uses the paper-literal deterministic orderings
    (``seed=None``), so the portfolio can never do worse than plain
    :func:`search_and_repair`; starts ``k >= 1`` jitter the criticality
    and destination rankings with seed ``base_seed + k``.  ``jobs`` > 1
    fans the starts out over the shared-nothing process pool.  The
    winner is the first deadline-feasible, lowest-energy schedule
    (ties: fewer misses, lower tardiness, lower start index — fully
    deterministic for fixed seeds regardless of worker count).
    """
    from repro.parallel.pool import pool_map, resolve_jobs

    cfg = config or RepairConfig()
    if starts < 1:
        raise ValueError(f"starts must be >= 1, got {starts}")
    if not schedule.deadline_misses():
        # Nothing to repair: the portfolio is a no-op, as search_and_repair is.
        report = RepairReport()
        report.initial_energy = report.final_energy = schedule.total_energy()
        outcome = StartOutcome(
            start=0, seed=None, misses=0, tardiness=0.0,
            energy=schedule.total_energy(), report=report,
        )
        return schedule, PortfolioReport(outcomes=[outcome], winner=0, jobs=1)

    mapping = dict(schedule.mapping())
    orders = {pe: list(tasks) for pe, tasks in schedule.pe_order().items()}
    payloads = [
        _StartPayload(
            ctg=schedule.ctg,
            acg=schedule.acg,
            mapping=mapping,
            orders=orders,
            algorithm=schedule.algorithm,
            config=replace(cfg, seed=None if k == 0 else base_seed + k),
            start=k,
        )
        for k in range(starts)
    ]
    jobs = resolve_jobs(jobs)
    ins = obs.get()
    ins.metrics.counter("repair.portfolio_starts").inc(starts)
    raw = pool_map(
        _portfolio_start,
        payloads,
        jobs=jobs,
        label="repair_portfolio",
        finalize=lambda result: ins.metrics.merge(result["metrics"]),
    )

    outcomes = [
        StartOutcome(
            start=result["start"],
            seed=result["seed"],
            misses=result["misses"],
            tardiness=result["tardiness"],
            energy=result["energy"],
            report=result["report"],
        )
        for result in raw
    ]
    winner = min(
        range(len(outcomes)),
        key=lambda i: (
            outcomes[i].misses,
            outcomes[i].tardiness,
            outcomes[i].energy,
            outcomes[i].start,
        ),
    )
    portfolio = PortfolioReport(outcomes=outcomes, winner=winner, jobs=jobs)
    ins.tracer.event(
        "repair.portfolio_winner",
        start=outcomes[winner].start,
        misses=outcomes[winner].misses,
        energy=outcomes[winner].energy,
    )
    # Rebuild the winner locally: rebuild is deterministic in
    # (mapping, orders), so the parent-side schedule is exactly the
    # worker's, whatever process produced it.
    best = rebuild_schedule(
        schedule.ctg, schedule.acg,
        raw[winner]["mapping"], raw[winner]["orders"],
        algorithm=schedule.algorithm,
        use_path_cache=cfg.use_path_cache,
    )
    best.runtime_seconds = schedule.runtime_seconds
    return best, portfolio


# -- local task swapping -------------------------------------------------------


def _lts_pass(
    schedule: Schedule,
    mapping: Dict[str, int],
    orders: Dict[int, List[str]],
    metric: MissMetric,
    report: RepairReport,
    cfg: RepairConfig,
    evaluator: _MoveEvaluator,
    rng: Optional[random.Random] = None,
) -> Tuple[Schedule, Dict[str, int], Dict[int, List[str]], MissMetric, bool]:
    """One LTS sweep: try to pull every critical task earlier on its PE."""
    improved_any = False
    frozen = cfg.frozen
    progress = True
    while progress and metric[0] > 0:
        progress = False
        critical = critical_tasks(schedule)
        for task in _jittered(_criticality_order(schedule, critical), rng):
            if task in frozen:
                continue
            pe = mapping[task]
            order = orders[pe]
            idx = order.index(task)
            # Try swapping with non-critical tasks scheduled earlier,
            # nearest first (smallest perturbation first).
            for j in range(idx - 1, -1, -1):
                other = order[j]
                if other in critical or other in frozen:
                    continue
                report.swaps_tried += 1
                candidate_order = list(order)
                candidate_order[idx], candidate_order[j] = (
                    candidate_order[j],
                    candidate_order[idx],
                )
                candidate_orders = dict(orders)
                candidate_orders[pe] = candidate_order
                rebuilt = evaluator.evaluate(schedule, mapping, candidate_orders, metric)
                if rebuilt is None:
                    continue
                candidate_metric = miss_metric(rebuilt)
                if candidate_metric < metric:
                    evaluator.promote()
                    orders[pe] = candidate_order
                    schedule = rebuilt
                    metric = candidate_metric
                    report.swaps_accepted += 1
                    ins = obs.get()
                    ins.metrics.counter("repair.lts_moves").inc()
                    ins.tracer.event(
                        "repair.lts_accept",
                        task=task,
                        swapped_with=other,
                        pe=pe,
                        misses=candidate_metric[0],
                    )
                    improved_any = True
                    progress = True
                    break  # re-derive criticality from the new schedule
            if progress:
                break
    return schedule, mapping, orders, metric, improved_any


# -- global task migration ------------------------------------------------------


def _gtm_pass(
    schedule: Schedule,
    mapping: Dict[str, int],
    orders: Dict[int, List[str]],
    metric: MissMetric,
    report: RepairReport,
    cfg: RepairConfig,
    evaluator: _MoveEvaluator,
    rng: Optional[random.Random] = None,
) -> Tuple[Schedule, Dict[str, int], Dict[int, List[str]], MissMetric, bool]:
    """Attempt one accepted migration (Fig. 4 returns to LTS after it).

    Two sweeps over the candidate space, each bounded by
    ``cfg.max_migrations_per_round`` attempts:

    1. the paper's ordering — critical tasks by urgency, destinations by
       increasing (computation + communication) energy, so the cheapest
       fix in energy terms is found first;
    2. a *load-relief* fallback — candidates re-ranked to move tasks off
       the busiest PEs onto the idlest ones.  Pure energy ordering can
       exhaust its attempt budget on hopeless moves when many tasks are
       critical; the relief ordering targets the capacity bottleneck
       that usually causes the miss (our addition; the paper does not
       specify behaviour when the energy-ordered search fails).
    """
    critical = [
        task
        for task in _jittered(_criticality_order(schedule, critical_tasks(schedule)), rng)
        if task not in cfg.frozen
    ]

    energy_sweep = (
        (task, dest_pe)
        for task in critical
        for dest_pe in _jittered(evaluator.destinations(schedule, task, mapping), rng)
    )
    result = _try_migrations(
        schedule, mapping, orders, metric, report, cfg, evaluator, energy_sweep
    )
    if result is not None:
        return result

    relief_sweep = _load_relief_candidates(schedule, mapping, critical)
    result = _try_migrations(
        schedule, mapping, orders, metric, report, cfg, evaluator, relief_sweep
    )
    if result is not None:
        return result
    return schedule, mapping, orders, metric, False


def _try_migrations(
    schedule: Schedule,
    mapping: Dict[str, int],
    orders: Dict[int, List[str]],
    metric: MissMetric,
    report: RepairReport,
    cfg: RepairConfig,
    evaluator: _MoveEvaluator,
    candidates,
) -> Optional[Tuple[Schedule, Dict[str, int], Dict[int, List[str]], MissMetric, bool]]:
    """Try candidate (task, dest) migrations; return on first acceptance."""
    attempts = 0
    for task, dest_pe in candidates:
        source_pe = mapping[task]
        if dest_pe == source_pe:
            continue
        if attempts >= cfg.max_migrations_per_round:
            return None
        attempts += 1
        report.migrations_tried += 1
        candidate_mapping = dict(mapping)
        candidate_mapping[task] = dest_pe
        candidate_orders = {pe: list(names) for pe, names in orders.items()}
        candidate_orders[source_pe].remove(task)
        _insert_by_start(candidate_orders.setdefault(dest_pe, []), task, schedule)
        rebuilt = evaluator.evaluate(schedule, candidate_mapping, candidate_orders, metric)
        if rebuilt is None:
            continue
        candidate_metric = miss_metric(rebuilt)
        if candidate_metric < metric:
            evaluator.promote()
            evaluator.invalidate_destinations()
            report.migrations_accepted += 1
            ins = obs.get()
            ins.metrics.counter("repair.gtm_moves").inc()
            ins.tracer.event(
                "repair.gtm_accept",
                task=task,
                src_pe=source_pe,
                dst_pe=dest_pe,
                misses=candidate_metric[0],
            )
            return rebuilt, candidate_mapping, candidate_orders, candidate_metric, True
    return None


def _load_relief_candidates(
    schedule: Schedule,
    mapping: Dict[str, int],
    critical: List[str],
):
    """(task, dest) pairs moving work from the busiest PEs to the idlest.

    Tasks are grouped by the busy time of their current PE (most loaded
    first, then by criticality order within a PE); destinations are
    ranked by ascending busy time so idle tiles are tried first.
    """
    acg = schedule.acg
    ctg = schedule.ctg
    load: Dict[int, float] = {pe.index: 0.0 for pe in acg.pes}
    for placement in schedule.task_placements.values():
        load[placement.pe] += placement.duration

    # Rank lookup must be O(1): ``critical.index(t)`` inside the sort key
    # is a linear scan, turning this sort quadratic on large critical sets.
    rank = {name: position for position, name in enumerate(critical)}
    ranked_tasks = sorted(critical, key=lambda t: (-load[mapping[t]], rank[t]))
    dest_order = sorted(load, key=lambda pe: load[pe])
    for task in ranked_tasks:
        task_obj = ctg.task(task)
        for dest_pe in dest_order:
            if not acg.pe_available(dest_pe):
                continue
            if task_obj.cost_on(acg.pe(dest_pe).type_name).feasible:
                yield task, dest_pe


def _destinations_by_energy(
    schedule: Schedule, task: str, mapping: Dict[str, int]
) -> List[int]:
    """Candidate PEs in increasing (computation + communication) energy.

    The communication term counts the task's incident edges against the
    current mapping of its neighbours — the paper's "increasing order of
    the execution and communication energy if that task is to be migrated
    onto the corresponding PEs".
    """
    ctg, acg = schedule.ctg, schedule.acg
    task_obj = ctg.task(task)
    ranked: List[Tuple[float, int]] = []
    for pe in acg.pes:
        if not acg.pe_available(pe.index):
            continue
        cost = task_obj.cost_on(pe.type_name)
        if not cost.feasible:
            continue
        try:
            energy = (
                cost.energy
                + incoming_comm_energy(ctg, acg, task, pe.index, mapping)
                + outgoing_comm_energy(ctg, acg, task, pe.index, mapping)
            )
        except RoutingError:
            # Degraded platform: a partition leaves no route between this
            # PE and a mapped neighbour — the migration cannot be built.
            continue
        ranked.append((energy, pe.index))
    ranked.sort()
    return [pe_index for _energy, pe_index in ranked]


def _insert_by_start(order: List[str], task: str, schedule: Schedule) -> None:
    """Insert a migrated task into a PE order at its old temporal position."""
    start = schedule.placement(task).start
    for i, name in enumerate(order):
        if schedule.placement(name).start > start:
            order.insert(i, task)
            return
    order.append(task)


def _jittered(ranked: Sequence, rng: Optional[random.Random]) -> List:
    """A lightly shaken copy of a ranked list (identity when ``rng`` is None).

    Each element's rank gets a uniform [0, 2) bump before re-sorting, so
    neighbours may swap but the heuristic's head stays near the front —
    enough diversification for a multi-start portfolio without degrading
    any single start into a random walk.
    """
    ranked = list(ranked)
    if rng is None or len(ranked) < 2:
        return ranked
    keys = [index + rng.uniform(0.0, 2.0) for index in range(len(ranked))]
    return [ranked[index] for index in sorted(range(len(ranked)), key=keys.__getitem__)]


def _criticality_order(schedule: Schedule, critical: Set[str]) -> List[str]:
    """Critical tasks, most urgent first.

    Urgency is the tardiness of the worst descendant miss the task
    contributes to; direct misses come before mere ancestors, bigger
    tardiness before smaller.
    """
    misses = schedule.deadline_misses()
    tardiness = {
        name: schedule.placement(name).finish - schedule.ctg.task(name).deadline
        for name in misses
    }
    miss_ancestors = {m: schedule.ctg.ancestors(m) for m in misses}

    def urgency(name: str) -> Tuple[int, float, str]:
        own = tardiness.get(name)
        if own is not None:
            return (0, -own, name)
        worst = max(
            (tardiness[m] for m in misses if name in miss_ancestors[m]),
            default=0.0,
        )
        return (1, -worst, name)

    return sorted(critical, key=urgency)


def _try_rebuild(
    schedule: Schedule,
    mapping: Dict[str, int],
    orders: Dict[int, List[str]],
    use_path_cache: bool = True,
) -> Optional[Schedule]:
    """Rebuild, treating infeasible orders as a rejected move."""
    try:
        return rebuild_schedule(
            schedule.ctg,
            schedule.acg,
            mapping,
            orders,
            algorithm=schedule.algorithm,
            use_path_cache=use_path_cache,
        )
    except InfeasibleOrderError:
        return None

"""Deterministic schedule reconstruction from (mapping, per-PE orders).

Search-and-repair (Step 3) explores moves in the space of task-to-PE
mappings and per-PE execution orders; after every candidate move the
timed schedule must be rebuilt from scratch with the same communication
semantics as the constructive scheduler.  :func:`rebuild_schedule` does
that: it list-schedules the tasks respecting (a) CTG precedence and
(b) the prescribed order of tasks sharing a PE, placing each task's
receiving transactions with the Fig. 3 communication scheduler.

A candidate (mapping, orders) pair can be *infeasible*: a swap may order
``a`` before ``b`` on one PE while ``b``'s descendants feed ``a``
(a cross-PE cycle).  Rebuilds detect this and raise
:class:`InfeasibleOrderError`, which the repair loop treats as a rejected
move.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro import obs
from repro.arch.acg import ACG
from repro.core.comm import schedule_incoming_transactions
from repro.ctg.graph import CTG
from repro.errors import InfeasibleOrderError, SchedulingError
from repro.schedule.entries import CommPlacement, TaskPlacement
from repro.schedule.overlay import ResourceTables
from repro.schedule.schedule import Schedule


@dataclass(frozen=True)
class CommitStep:
    """One committed task of a rebuild, in commit order.

    The *commit trace* — the sequence of these — is what the incremental
    repair engine replays: a rebuild is fully determined by its commit
    sequence, so a recorded trace plus the deterministic selection rule
    lets a later rebuild prove how long a prefix it shares with this one
    without re-probing anything (see ``repro.core.increbuild``).
    """

    task: str
    pe: int
    placement: TaskPlacement
    comms: Tuple[CommPlacement, ...]


def rebuild_schedule(
    ctg: CTG,
    acg: ACG,
    mapping: Mapping[str, int],
    pe_orders: Mapping[int, Sequence[str]],
    algorithm: str = "rebuild",
    use_path_cache: bool = True,
) -> Schedule:
    """Rebuild a timed schedule from a mapping and per-PE task orders.

    Among the tasks eligible at each step (all predecessors placed *and*
    first unplaced task in their PE's order), the one whose execution can
    start earliest is committed first; this keeps the reconstruction
    deterministic and packs resources greedily.

    ``use_path_cache=False`` re-merges every route per probe (the
    literal reference path); the result is bit-identical either way.

    Raises:
        InfeasibleOrderError: the orders deadlock against the precedence
            constraints.
        SchedulingError: the mapping assigns a task to an infeasible PE.
    """
    schedule, _trace = rebuild_schedule_traced(
        ctg,
        acg,
        mapping,
        pe_orders,
        algorithm=algorithm,
        record_trace=False,
        use_path_cache=use_path_cache,
    )
    return schedule


def rebuild_schedule_traced(
    ctg: CTG,
    acg: ACG,
    mapping: Mapping[str, int],
    pe_orders: Mapping[int, Sequence[str]],
    algorithm: str = "rebuild",
    record_trace: bool = True,
    use_path_cache: bool = True,
) -> Tuple[Schedule, List[CommitStep]]:
    """:func:`rebuild_schedule` plus the commit trace it followed.

    With ``record_trace=False`` the trace list comes back empty (this is
    the body of :func:`rebuild_schedule`); the schedule is identical
    either way.
    """
    for name in ctg.task_names():
        if name not in mapping:
            raise SchedulingError(f"mapping misses task {name!r}")

    # Validate the order tables: each PE's order must list exactly the
    # tasks mapped to it.
    expected: Dict[int, List[str]] = {pe.index: [] for pe in acg.pes}
    for name, pe_index in mapping.items():
        expected.setdefault(pe_index, []).append(name)
    position: Dict[str, int] = {}
    for pe_index, order in pe_orders.items():
        for pos, name in enumerate(order):
            if mapping.get(name) != pe_index:
                raise SchedulingError(
                    f"order of PE {pe_index} lists {name!r}, mapped to PE {mapping.get(name)}"
                )
            position[name] = pos
    for pe_index, names in expected.items():
        order = list(pe_orders.get(pe_index, ()))
        if sorted(order) != sorted(names):
            raise SchedulingError(
                f"PE {pe_index} order {order} does not match its mapped tasks {sorted(names)}"
            )

    schedule = Schedule(ctg, acg, algorithm=algorithm)
    tables = ResourceTables(use_path_cache=use_path_cache)
    placements: Dict[str, TaskPlacement] = {}
    next_slot: Dict[int, int] = {pe_index: 0 for pe_index in expected}
    remaining_preds: Dict[str, int] = {
        name: ctg.in_degree(name) for name in ctg.task_names()
    }
    unplaced = set(ctg.task_names())
    trace: List[CommitStep] = []
    scheduled_counter = obs.get().metrics.counter("rebuild.tasks_scheduled")

    while unplaced:
        eligible = _eligible_tasks(
            ctg, mapping, pe_orders, next_slot, remaining_preds, unplaced
        )
        if not eligible:
            raise InfeasibleOrderError(
                "per-PE orders deadlock against CTG precedence; "
                f"{len(unplaced)} tasks stuck"
            )
        best: Optional[Tuple[float, float, str]] = None
        for name in eligible:
            start, finish = _probe(ctg, acg, name, mapping[name], placements, tables)
            key = (start, finish, name)
            if best is None or key < best:
                best = key
        assert best is not None
        chosen = best[2]
        placement, comms = _commit(
            ctg, acg, chosen, mapping[chosen], placements, tables, schedule
        )
        scheduled_counter.inc()
        if record_trace:
            trace.append(
                CommitStep(
                    task=chosen, pe=placement.pe, placement=placement, comms=tuple(comms)
                )
            )
        unplaced.discard(chosen)
        next_slot[mapping[chosen]] += 1
        for succ in ctg.successors(chosen):
            remaining_preds[succ] -= 1

    return schedule, trace


def _eligible_tasks(
    ctg: CTG,
    mapping: Mapping[str, int],
    pe_orders: Mapping[int, Sequence[str]],
    next_slot: Mapping[int, int],
    remaining_preds: Mapping[str, int],
    unplaced: set,
) -> List[str]:
    """Tasks that are next on their PE and whose predecessors are placed."""
    eligible = []
    for pe_index, order in pe_orders.items():
        slot = next_slot[pe_index]
        if slot < len(order):
            name = order[slot]
            if name in unplaced and remaining_preds[name] == 0:
                eligible.append(name)
    return eligible


def _probe(
    ctg: CTG,
    acg: ACG,
    task_name: str,
    pe_index: int,
    placements: Dict[str, TaskPlacement],
    tables: ResourceTables,
    floor: float = 0.0,
) -> Tuple[float, float]:
    """Tentative (start, finish) of placing ``task_name`` now.

    ``floor`` bounds both the transactions and the execution start from
    below; degraded-mode recovery rebuilds pass the fault time so the
    salvaged past stays untouched.
    """
    cost = _cost(ctg, acg, task_name, pe_index)
    overlay = tables.overlay()
    drt, _comms = schedule_incoming_transactions(
        ctg, acg, task_name, pe_index, placements, overlay, floor=floor
    )
    start = overlay.find_earliest(pe_index, max(drt, floor), cost.time)
    overlay.drop()
    return start, start + cost.time


def _commit(
    ctg: CTG,
    acg: ACG,
    task_name: str,
    pe_index: int,
    placements: Dict[str, TaskPlacement],
    tables: ResourceTables,
    schedule: Schedule,
    floor: float = 0.0,
) -> Tuple[TaskPlacement, List[CommPlacement]]:
    cost = _cost(ctg, acg, task_name, pe_index)
    overlay = tables.overlay()
    drt, comms = schedule_incoming_transactions(
        ctg, acg, task_name, pe_index, placements, overlay, floor=floor
    )
    start = overlay.find_earliest(pe_index, max(drt, floor), cost.time)
    overlay.commit()
    tables.reserve(pe_index, start, start + cost.time)
    placement = TaskPlacement(
        task=task_name,
        pe=pe_index,
        start=start,
        finish=start + cost.time,
        energy=cost.energy,
    )
    placements[task_name] = placement
    schedule.place_task(placement)
    for comm in comms:
        schedule.place_comm(comm)
    return placement, comms


def _cost(ctg: CTG, acg: ACG, task_name: str, pe_index: int):
    task = ctg.task(task_name)
    pe_type = acg.pe(pe_index).type_name
    cost = task.cost_on(pe_type)
    if not cost.feasible:
        raise SchedulingError(
            f"task {task_name!r} mapped to PE {pe_index} of infeasible type {pe_type!r}"
        )
    return cost

"""The Fig. 3 communication scheduler.

Given a candidate destination PE for a task, schedule all of the task's
*receiving* communication transactions (its LCT) onto the link schedule
tables, and return the data ready time ``DRT`` — the latest arrival among
them.  Transactions are processed in increasing sender-finish order; each
one is placed at the earliest slot where its *entire* XY path is free for
the whole transfer duration (wormhole: the path is held end to end), and
its reservation is visible to the transactions scheduled after it.

The path probe (``overlay.find_earliest_on_path``) is the single hottest
operation in the whole system — every F(i,k) evaluation and every repair
rebuild funnels through it.  It is served by the version-keyed path-table
cache in :mod:`repro.schedule.overlay`: the merged committed busy list of
each route is reused until one of its link tables changes version, probes
whose ready time clears every horizon skip merging entirely, and all
reads are zero-copy.  ``EASConfig.use_path_cache=False`` (CLI
``--no-path-cache``) keeps the literal re-merge-per-probe reference path;
cached and literal probes return bit-identical answers (DESIGN.md,
"Path-table cache soundness").  Telemetry: ``comm.path_cache_hits`` /
``comm.path_cache_misses``, ``comm.horizon_fast_path`` and
``comm.merge_intervals``.

All reservations go through a :class:`TentativeOverlay`, so the caller
decides whether this was a what-if evaluation (drop) or the real
placement (commit) — the paper's "schedule tables ... will be restored
every time a F(i,k) is calculated".

The overlay additionally records every link table this pass probed
(``overlay.probed_resources()``) and the reservations it made
(``overlay.reservations()``).  Together they are the evaluation's
*resource footprint*: the F(i,k) result is a pure function of the busy
states of the probed resources, which is what lets the level-based
scheduler cache evaluations across RTL iterations and invalidate only
the ones a commit actually dirtied.  Local and zero-volume transfers
probe nothing (they hold no links), and the fixed-delay ablation skips
link tables entirely, so its footprint is the destination PE alone.
"""

from __future__ import annotations

from typing import List, Mapping, Tuple

from repro import obs
from repro.arch.acg import ACG
from repro.ctg.graph import CTG
from repro.errors import SchedulingError
from repro.schedule.entries import CommPlacement, TaskPlacement
from repro.schedule.overlay import TentativeOverlay


def schedule_incoming_transactions(
    ctg: CTG,
    acg: ACG,
    task: str,
    dst_pe: int,
    placements: Mapping[str, TaskPlacement],
    overlay: TentativeOverlay,
    contention_aware: bool = True,
    floor: float = 0.0,
) -> Tuple[float, List[CommPlacement]]:
    """Schedule the LCT of ``task`` assuming it runs on ``dst_pe``.

    Args:
        ctg: application graph.
        acg: platform.
        task: the receiving task.
        dst_pe: candidate destination PE index.
        placements: already-committed task placements; every predecessor
            of ``task`` must appear here (level-based scheduling only
            considers ready tasks).
        overlay: tentative layer over the committed link tables; this
            function records its reservations there and never commits.
        contention_aware: when False, link occupancy is ignored — every
            transaction pretends to start the moment its sender finishes
            (the fixed-delay model the paper's introduction criticises).
            Used only by the contention ablation; the resulting
            placements may overlap on links.
        floor: earliest time any transaction may start.  Degraded-mode
            recovery passes the fault time so nothing new is scheduled in
            the already-elapsed past; 0.0 (the default) is a no-op
            because all times are non-negative.

    Returns:
        ``(drt, comm_placements)`` — the data ready time (0.0 for source
        tasks) and one :class:`CommPlacement` per incoming edge, in the
        order they were scheduled.
    """
    lct = ctg.in_edges(task)
    if not lct:
        return 0.0, []

    for edge in lct:
        if edge.src not in placements:
            raise SchedulingError(
                f"cannot schedule transactions of {task!r}: sender {edge.src!r} unplaced"
            )

    # Fig. 3: "sort LCT by the finish time of its sender".
    lct = sorted(lct, key=lambda e: (placements[e.src].finish, e.src))

    metrics = obs.get().metrics
    link_probes = metrics.counter("comm.link_probes")
    local_transfers = metrics.counter("comm.local_transfers")

    drt = 0.0
    comm_placements: List[CommPlacement] = []
    for edge in lct:
        sender = placements[edge.src]
        route = acg.route(sender.pe, dst_pe)
        duration = acg.comm_duration(edge.volume, sender.pe, dst_pe)
        ready = max(sender.finish, floor)
        if route.is_local or duration == 0.0:
            # Same tile or zero volume: no links held, data available at
            # the moment the sender finishes (or the floor, if later).
            start = finish = ready
            local_transfers.inc()
        elif not contention_aware:
            # Fixed-delay model: transfer time only, no link arbitration.
            start = ready
            finish = start + duration
        else:
            start = overlay.find_earliest_on_path(route.links, ready, duration)
            finish = start + duration
            overlay.reserve_on_path(route.links, start, finish)
            link_probes.inc()
        comm_placements.append(
            CommPlacement(
                src_task=edge.src,
                dst_task=task,
                volume=edge.volume,
                src_pe=sender.pe,
                dst_pe=dst_pe,
                start=start,
                finish=finish,
                links=route.links,
                energy=acg.comm_energy(edge.volume, sender.pe, dst_pe),
            )
        )
        if finish > drt:
            drt = finish

    return drt, comm_placements


def incoming_comm_energy(
    ctg: CTG,
    acg: ACG,
    task: str,
    dst_pe: int,
    mapping: Mapping[str, int],
) -> float:
    """Network energy of delivering all of ``task``'s inputs to ``dst_pe``.

    Depends only on the mapping (Eq. 3's communication term), not on
    timing; used by the level-based scheduler's ``E1``/``E2`` metrics and
    by GTM's destination ordering.
    """
    total = 0.0
    for edge in ctg.in_edges(task):
        src_pe = mapping.get(edge.src)
        if src_pe is not None:
            total += acg.comm_energy(edge.volume, src_pe, dst_pe)
    return total


def outgoing_comm_energy(
    ctg: CTG,
    acg: ACG,
    task: str,
    src_pe: int,
    mapping: Mapping[str, int],
) -> float:
    """Network energy of ``task``'s outputs toward already-mapped consumers."""
    total = 0.0
    for edge in ctg.out_edges(task):
        dst_pe = mapping.get(edge.dst)
        if dst_pe is not None:
            total += acg.comm_energy(edge.volume, src_pe, dst_pe)
    return total

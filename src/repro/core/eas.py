"""EAS Step 2: level-based scheduling, plus the top-level EAS driver.

The level-based scheduler repeatedly examines the **ready task list**
(RTL — tasks whose predecessors are all scheduled).  For every
``(task, PE)`` combination it computes the earliest finish time

    ``F(i,k) = start(i,k) + r_i_k``

where ``start(i,k)`` is the earliest gap on PE ``k`` at or after the data
ready time ``DRT(i,k)`` obtained by *tentatively* scheduling the task's
receiving transactions on the link tables (Fig. 3), restoring the tables
afterwards.  Selection then follows the paper:

* if some ready task cannot meet its budgeted deadline anywhere
  (``min_F(i) > BD_i``), the most violating one is scheduled on its
  fastest PE (performance rescue);
* otherwise each task's BD-feasible PE list ``L_i`` is formed, the
  energy regret ``δE_i = E2_i - E1_i`` is computed (``E`` includes the
  communication energy of the task's inputs, whose senders are already
  placed), and the task with the largest regret is committed to its
  minimum-energy PE.

A task with exactly one BD-feasible PE gets ``δE = +inf`` — deferring a
forced placement risks losing it, so it is treated as maximal regret
(interpretation decision; see DESIGN.md).

Incremental evaluation
----------------------
Naively, Step 2 recomputes every ``F(i,k)`` on every iteration even
though a commit only mutates one PE table and the links its
transactions traverse.  The scheduler therefore caches evaluations
across iterations and, after each commit, evicts only the entries whose
*resource footprint* (the PE and link tables the evaluation probed,
reported by :class:`~repro.schedule.overlay.TentativeOverlay`)
intersects the commit's dirty set — the committed PE plus every link
the committed transactions reserved.  An untouched footprint means the
evaluation would recompute to the identical result, so cached and naive
runs produce byte-identical schedules (see DESIGN.md for the argument
and ``tests/test_eval_cache.py`` for the randomized equivalence
harness).  ``EASConfig.use_cache`` keeps the naive path available as
the reference implementation.
"""

from __future__ import annotations

import math
from bisect import bisect_left, insort
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, List, Mapping, Optional, Tuple

from repro import obs
from repro.arch.acg import ACG
from repro.core.comm import schedule_incoming_transactions
from repro.obs.decisions import Candidate, TaskDecision
from repro.core.slack import TaskBudget, WeightPolicy, compute_budgets, weight_var_product
from repro.ctg.graph import CTG
from repro.errors import SchedulingError, UnroutableError
from repro.schedule.entries import CommPlacement, TaskPlacement
from repro.schedule.overlay import ResourceTables
from repro.schedule.schedule import Schedule
from repro.schedule.table import EPS


@dataclass
class EASConfig:
    """Knobs of the EAS algorithm.

    Attributes:
        weight_policy: Step-1 slack weight function (paper default:
            ``VAR_e * VAR_r``).
        include_comm_in_slack: include mean input-transfer delay in the
            Step-1 path lengths (paper default: off).
        repair: run Step 3 (search-and-repair) when the level-based
            schedule misses deadlines.
        max_repair_rounds: safety bound on LTS/GTM alternations.
        contention_aware: schedule transactions against real link
            occupancy (the paper's approach).  When False the scheduler
            uses the fixed-delay communication model the paper's
            introduction criticises; the resulting timing is
            optimistic and its link usage may overlap — only the
            contention ablation should turn this off.
        use_cache: reuse ``F(i,k)`` evaluations across RTL iterations,
            invalidating only entries whose resource footprint the last
            commit dirtied.  Produces schedules identical to the naive
            path (the reference implementation kept behind
            ``use_cache=False`` and the CLI's ``--no-eval-cache``) while
            doing far fewer Fig. 3 evaluations.
        use_incremental_repair: evaluate Step-3 candidate moves with the
            incremental rebuild engine (prefix reuse + early abort +
            memoization, see ``core/increbuild.py``) instead of a full
            rebuild per candidate.  Both settings accept the identical
            move sequence; ``False`` (CLI ``--no-incremental-repair``)
            keeps the paper-literal path as the reference.
        use_path_cache: serve Fig. 3 path probes from the version-keyed
            merged-busy-list cache with the horizon fast path (see
            ``schedule/overlay.py``), in both Step 2 and Step-3 rebuilds.
            ``False`` (CLI ``--no-path-cache``) re-merges every route
            from scratch per probe — the literal reference path.
            Schedules are bit-identical either way; only runtime differs.
    """

    weight_policy: WeightPolicy = weight_var_product
    include_comm_in_slack: bool = False
    repair: bool = True
    max_repair_rounds: int = 64
    contention_aware: bool = True
    use_cache: bool = True
    use_incremental_repair: bool = True
    use_path_cache: bool = True


@dataclass
class _Evaluation:
    """One F(i,k) evaluation result, with enough context to replay it.

    ``footprint`` is the set of resources (the candidate PE plus every
    link table the Fig. 3 pass consulted) the result depends on;
    ``comms`` / ``reservations`` are the tentative transaction
    placements and their link reservations, so a commit of a *clean*
    cached evaluation can skip the recompute entirely.  ``windows`` maps
    each resource to the busy windows this evaluation was *granted*
    there (the link reservations plus the task's own slot on the
    candidate PE): because ``find_gap`` results are monotone under added
    busy intervals, the evaluation stays exact until some commit
    reserves a window overlapping one of these.
    """

    task: str
    pe: int
    start: float
    finish: float
    drt: float
    energy: float
    comms: List["CommPlacement"] = field(default_factory=list)
    reservations: Dict[Hashable, Tuple[Tuple[float, float], ...]] = field(default_factory=dict)
    footprint: FrozenSet[Hashable] = frozenset()
    windows: Dict[Hashable, Tuple[Tuple[float, float], ...]] = field(default_factory=dict)


def _windows_conflict(
    a: Mapping[Hashable, Tuple[Tuple[float, float], ...]],
    b: Mapping[Hashable, Tuple[Tuple[float, float], ...]],
) -> bool:
    """Whether two granted-window maps overlap on any shared resource.

    Plain interval overlap (``s < end and start < e``): windows that
    merely touch endpoints cannot move a ``find_gap`` result, while
    anything closer — including sub-EPS contact — conservatively
    counts as a conflict.  Window lists are tiny (one slot per
    transaction on a link), so the pairwise scan is cheap.
    """
    if len(b) < len(a):
        a, b = b, a
    for resource, intervals in a.items():
        others = b.get(resource)
        if not others:
            continue
        for start, end in intervals:
            for other_start, other_end in others:
                if other_start < end and start < other_end:
                    return True
    return False


def _candidate_from_eval(evaluation: _Evaluation, bd: float) -> Candidate:
    """The schema-v2 component breakdown of one F(i,k) evaluation.

    ``evaluation.energy`` already folds in the communication energy of
    the task's inputs, so the compute share is recovered by subtracting
    the transaction energies; ``slack`` is the margin the placement
    would leave against the Step-1 budgeted deadline.
    """
    comm_energy = sum(c.energy for c in evaluation.comms)
    return Candidate(
        pe=evaluation.pe,
        finish=evaluation.finish,
        energy=evaluation.energy,
        start=evaluation.start,
        drt=evaluation.drt,
        compute_energy=evaluation.energy - comm_energy,
        comm_energy=comm_energy,
        hops=sum(len(c.links) for c in evaluation.comms),
        slack=bd - evaluation.finish,
    )


@dataclass
class _SelectionOutcome:
    """Why the Step-2 selection picked its (task, PE) pair."""

    #: Rule-3 performance rescue (no PE meets the budgeted deadline).
    rescue: bool = False
    #: energy regret δE of the chosen task (None on a rescue, inf when
    #: the task had a single BD-feasible PE).
    regret: Optional[float] = None


class LevelBasedScheduler:
    """Step 2 of EAS: energy-aware list scheduling steered by budgets.

    The three optional arguments exist for degraded-mode recovery
    (``repro.faults.recovery``), which re-runs Step 2 over the *surviving*
    tasks of a committed schedule: ``preplaced`` seeds already-final
    placements (their tasks are never re-scheduled, but their outputs
    feed transactions), ``tables`` supplies resource tables pre-loaded
    with the salvaged reservations, and ``floor`` forbids any new work
    before the fault time.  All three default to the healthy-platform
    behaviour.
    """

    def __init__(
        self,
        ctg: CTG,
        acg: ACG,
        budgets: Mapping[str, TaskBudget],
        algorithm_name: str = "eas-base",
        contention_aware: bool = True,
        use_cache: bool = True,
        use_path_cache: bool = True,
        preplaced: Optional[Mapping[str, TaskPlacement]] = None,
        tables: Optional[ResourceTables] = None,
        floor: float = 0.0,
    ) -> None:
        self.ctg = ctg
        self.acg = acg
        self.budgets = budgets
        self.algorithm_name = algorithm_name
        self.contention_aware = contention_aware
        self.use_cache = use_cache
        self.floor = floor
        self._tables = (
            tables if tables is not None else ResourceTables(use_path_cache=use_path_cache)
        )
        self._placements: Dict[str, TaskPlacement] = (
            dict(preplaced) if preplaced else {}
        )
        #: clean F(i,k) evaluations carried across RTL iterations.
        self._cache: Dict[Tuple[str, int], _Evaluation] = {}
        #: per-task feasible PE indices (static: depends on types only).
        self._feasible_pes: Dict[str, List[int]] = {}
        ins = obs.get()
        self._ins = ins
        self._eval_counter = ins.metrics.counter("eas.evaluations")
        self._restore_counter = ins.metrics.counter("comm.table_restores")
        self._hit_counter = ins.metrics.counter("eas.cache_hits")
        self._invalidation_counter = ins.metrics.counter("eas.cache_invalidations")

    # -- F(i,k) evaluation --------------------------------------------------

    def _pes_for(self, task_name: str) -> List[int]:
        """Available PE indices whose type can run ``task_name``."""
        pes = self._feasible_pes.get(task_name)
        if pes is None:
            task = self.ctg.task(task_name)
            pes = [
                pe.index
                for pe in self.acg.pes
                if self.acg.pe_available(pe.index) and task.cost_on(pe.type_name).feasible
            ]
            self._feasible_pes[task_name] = pes
        return pes

    def _evaluate(self, task_name: str, pe_index: int) -> Optional[_Evaluation]:
        """Compute ``F(i,k)``; ``None`` when the PE is unusable.

        A PE can be unusable because its type cannot run the task, or —
        on a fault-degraded platform — because a partition leaves no
        route from some already-placed sender (``UnroutableError``); both
        simply remove the candidate.
        """
        task = self.ctg.task(task_name)
        pe = self.acg.pe(pe_index)
        cost = task.cost_on(pe.type_name)
        if not cost.feasible:
            return None
        overlay = self._tables.overlay()
        try:
            drt, comms = schedule_incoming_transactions(
                self.ctg,
                self.acg,
                task_name,
                pe_index,
                self._placements,
                overlay,
                contention_aware=self.contention_aware,
                floor=self.floor,
            )
        except UnroutableError:
            overlay.drop()
            return None
        start = overlay.find_earliest(pe_index, max(drt, self.floor), cost.time)
        footprint = overlay.probed_resources()
        reservations = overlay.reservations()
        overlay.drop()  # the paper's table restore
        self._eval_counter.inc()
        self._restore_counter.inc()
        comm_energy = sum(c.energy for c in comms)
        windows = dict(reservations)
        windows[pe_index] = ((start, start + cost.time),)
        return _Evaluation(
            task=task_name,
            pe=pe_index,
            start=start,
            finish=start + cost.time,
            drt=drt,
            energy=cost.energy + comm_energy,
            comms=comms,
            reservations=reservations,
            footprint=footprint,
            windows=windows,
        )

    def _commit(
        self,
        task_name: str,
        pe_index: int,
        schedule: Schedule,
        cached: Optional[_Evaluation] = None,
    ) -> TaskPlacement:
        """Make the chosen ``(task, PE)`` pair permanent.

        With a *clean* cached evaluation (one whose footprint no commit
        has dirtied since it was computed — which every evaluation the
        selection just used is, by construction) the stored transaction
        placements and link reservations are replayed verbatim;
        otherwise the evaluation is recomputed, the naive reference
        behaviour.
        """
        task = self.ctg.task(task_name)
        pe = self.acg.pe(pe_index)
        cost = task.cost_on(pe.type_name)
        if cached is not None:
            start = cached.start
            comms = cached.comms
            for resource, intervals in cached.reservations.items():
                for interval_start, interval_end in intervals:
                    self._tables.reserve(resource, interval_start, interval_end)
        else:
            overlay = self._tables.overlay()
            drt, comms = schedule_incoming_transactions(
                self.ctg,
                self.acg,
                task_name,
                pe_index,
                self._placements,
                overlay,
                contention_aware=self.contention_aware,
                floor=self.floor,
            )
            start = overlay.find_earliest(pe_index, max(drt, self.floor), cost.time)
            overlay.commit()
        self._tables.reserve(pe_index, start, start + cost.time)
        placement = TaskPlacement(
            task=task_name,
            pe=pe_index,
            start=start,
            finish=start + cost.time,
            energy=cost.energy,
        )
        self._placements[task_name] = placement
        schedule.place_task(placement)
        for comm in comms:
            schedule.place_comm(comm)
        return placement

    # -- cache maintenance --------------------------------------------------

    def _invalidate(self, committed: _Evaluation) -> int:
        """Evict cache entries whose footprint the commit dirtied.

        A commit mutates exactly (a) the committed PE's table and (b)
        the link tables its transactions reserved; an evaluation whose
        probe footprint misses all of them would recompute to the
        identical result and stays cached.  Within a shared resource the
        check is refined to *time windows*: ``find_gap`` is monotone
        under added busy intervals and its result only moves when a new
        interval overlaps the granted slot, so a commit reserving a
        shared link at a disjoint time leaves the evaluation exact
        (sub-EPS boundary contact counts as overlap, conservatively).
        Entries of the committed task itself are consumed, not
        invalidated.  Returns the number of dirtied entries.
        """
        dirty = committed.windows
        evicted = 0
        stale: List[Tuple[str, int]] = []
        for key, evaluation in self._cache.items():
            if key[0] == committed.task:
                stale.append(key)
            elif not evaluation.footprint.isdisjoint(dirty) and _windows_conflict(
                dirty, evaluation.windows
            ):
                stale.append(key)
                evicted += 1
        for key in stale:
            del self._cache[key]
        if evicted:
            self._invalidation_counter.inc(evicted)
        self._ins.tracer.event(
            "eval_cache_sweep",
            task=committed.task,
            pe=committed.pe,
            dirty_resources=len(dirty),
            evicted=evicted,
            retained=len(self._cache),
        )
        return evicted

    # -- selection ------------------------------------------------------------

    def _select(
        self, evaluations: Dict[str, Dict[int, _Evaluation]]
    ) -> Tuple[str, int, _SelectionOutcome]:
        """Apply the paper's Step-2 selection rules to the current RTL."""
        min_f: Dict[str, _Evaluation] = {}
        for task_name, per_pe in evaluations.items():
            if not per_pe:
                raise SchedulingError(f"task {task_name!r} has no feasible PE")
            min_f[task_name] = min(
                per_pe.values(), key=lambda ev: (ev.finish, ev.energy, ev.pe)
            )

        # Rule 3: violating tasks go first, fastest PE wins.
        violations = [
            (min_f[t].finish - self.budgets[t].budgeted_deadline, t)
            for t in evaluations
            if min_f[t].finish > self.budgets[t].budgeted_deadline + EPS
        ]
        if violations:
            violations.sort(key=lambda item: (-item[0], item[1]))
            chosen = violations[0][1]
            return chosen, min_f[chosen].pe, _SelectionOutcome(rescue=True)

        # Rule 4: all tasks can meet their BD somewhere; maximise regret.
        # Ties: tighter (smaller) BD first, then task name, for determinism.
        best_task: Optional[str] = None
        best_key: Tuple[float, float] = (-math.inf, -math.inf)
        best_pe = -1
        for task_name in sorted(evaluations):
            per_pe = evaluations[task_name]
            bd = self.budgets[task_name].budgeted_deadline
            feasible = [ev for ev in per_pe.values() if ev.finish <= bd + EPS]
            feasible.sort(key=lambda ev: (ev.energy, ev.finish, ev.pe))
            e1 = feasible[0]
            delta = math.inf if len(feasible) == 1 else feasible[1].energy - e1.energy
            key = (delta, -bd)
            if best_task is None or key > best_key:
                best_task = task_name
                best_key = key
                best_pe = e1.pe
        assert best_task is not None
        return best_task, best_pe, _SelectionOutcome(regret=best_key[0])

    # -- main loop ----------------------------------------------------------------

    def run(self) -> Schedule:
        """Schedule every task; returns a structurally valid schedule."""
        schedule = Schedule(self.ctg, self.acg, algorithm=self.algorithm_name)
        # Preplaced tasks count as done: they never enter the RTL and
        # their successors only wait for the remaining predecessors.
        done = set(self._placements)
        remaining_preds: Dict[str, int] = {
            name: sum(1 for p in self.ctg.predecessors(name) if p not in done)
            for name in self.ctg.task_names()
            if name not in done
        }
        ready = sorted(name for name, n in remaining_preds.items() if n == 0)

        ins = self._ins
        rescue_counter = ins.metrics.counter("eas.rescues")
        commit_counter = ins.metrics.counter("eas.commits")
        record_decisions = ins.decisions.enabled
        decided: List[TaskDecision] = []

        use_cache = self.use_cache
        cache = self._cache
        total_hits = 0
        total_invalidations = 0

        with ins.tracer.span(
            "level_schedule",
            algorithm=self.algorithm_name,
            ctg=self.ctg.name,
            tasks=self.ctg.n_tasks,
            pes=len(self.acg.pes),
            eval_cache=use_cache,
        ) as level_span:
            while ready:
                evaluations: Dict[str, Dict[int, _Evaluation]] = {}
                with ins.tracer.span("evaluate_rtl", ready=len(ready)) as rtl_span:
                    hits = fresh = 0
                    for task_name in ready:
                        per_pe: Dict[int, _Evaluation] = {}
                        for pe_index in self._pes_for(task_name):
                            key = (task_name, pe_index)
                            evaluation = cache.get(key) if use_cache else None
                            if evaluation is None:
                                evaluation = self._evaluate(task_name, pe_index)
                                if evaluation is None:
                                    continue
                                fresh += 1
                                if use_cache:
                                    cache[key] = evaluation
                            else:
                                hits += 1
                            per_pe[pe_index] = evaluation
                        evaluations[task_name] = per_pe
                    if hits:
                        self._hit_counter.inc(hits)
                        total_hits += hits
                    rtl_span.set_attribute("cache_hits", hits)
                    rtl_span.set_attribute("evaluations", fresh)

                chosen_task, chosen_pe, outcome = self._select(evaluations)
                chosen_eval = evaluations[chosen_task][chosen_pe]
                placement = self._commit(
                    chosen_task,
                    chosen_pe,
                    schedule,
                    cached=chosen_eval if use_cache else None,
                )
                if use_cache:
                    total_invalidations += self._invalidate(chosen_eval)
                commit_counter.inc()
                if outcome.rescue:
                    rescue_counter.inc()
                if record_decisions:
                    bd = self.budgets[chosen_task].budgeted_deadline
                    decision = TaskDecision(
                        task=chosen_task,
                        pe=chosen_pe,
                        algorithm=self.algorithm_name,
                        rescue=outcome.rescue,
                        regret=outcome.regret,
                        start=placement.start,
                        finish=placement.finish,
                        energy=placement.energy,
                        bd=bd,
                        chosen=_candidate_from_eval(chosen_eval, bd),
                        candidates=[
                            _candidate_from_eval(ev, bd)
                            for pe_index, ev in sorted(evaluations[chosen_task].items())
                            if pe_index != chosen_pe
                        ],
                    )
                    ins.decisions.record(decision)
                    decided.append(decision)

                # `ready` is kept sorted: delete by binary search, insert
                # newly ready successors in order (no per-iteration sort).
                del ready[bisect_left(ready, chosen_task)]
                for succ in self.ctg.successors(chosen_task):
                    if succ not in remaining_preds:
                        continue  # preplaced successor (recovery resurrect)
                    remaining_preds[succ] -= 1
                    if remaining_preds[succ] == 0:
                        insort(ready, succ)

            level_span.set_attribute("cache_hits", total_hits)
            level_span.set_attribute("cache_invalidations", total_invalidations)

        if len(self._placements) != self.ctg.n_tasks:
            raise SchedulingError(
                "level-based scheduling finished without placing every task"
            )
        schedule.provenance = decided
        return schedule


def eas_base_schedule(
    ctg: CTG,
    acg: ACG,
    config: Optional[EASConfig] = None,
) -> Schedule:
    """EAS without Step 3 (the paper's *EAS-base*).

    The result always satisfies the structural invariants but may miss
    deadlines on tightly constrained inputs.
    """
    cfg = config or EASConfig()
    with obs.timed_phase("eas_base", ctg=ctg.name) as timing:
        budgets = compute_budgets(
            ctg,
            acg,
            weight_policy=cfg.weight_policy,
            include_comm=cfg.include_comm_in_slack,
        )
        schedule = LevelBasedScheduler(
            ctg,
            acg,
            budgets,
            algorithm_name="eas-base" if cfg.contention_aware else "eas-base-nocontention",
            contention_aware=cfg.contention_aware,
            use_cache=cfg.use_cache,
            use_path_cache=cfg.use_path_cache,
        ).run()
    schedule.runtime_seconds = timing.seconds
    return schedule


def eas_schedule(
    ctg: CTG,
    acg: ACG,
    config: Optional[EASConfig] = None,
) -> Schedule:
    """The full EAS algorithm (Steps 1-3).

    Runs the level-based scheduler and, when the result misses deadlines
    and ``config.repair`` is on, post-processes it with search-and-repair
    (local task swapping + global task migration).
    """
    from repro.core.repair import RepairConfig, search_and_repair

    cfg = config or EASConfig()
    with obs.timed_phase("eas", ctg=ctg.name) as timing:
        schedule = eas_base_schedule(ctg, acg, cfg)
        if cfg.repair and schedule.deadline_misses():
            repaired, _report = search_and_repair(
                schedule,
                RepairConfig(
                    max_rounds=cfg.max_repair_rounds,
                    use_incremental=cfg.use_incremental_repair,
                    use_path_cache=cfg.use_path_cache,
                ),
            )
            # Repair only reorders/remaps; the level-schedule decisions
            # remain the provenance of the original placements.
            repaired.provenance = schedule.provenance
            schedule = repaired
    schedule.algorithm = "eas"
    schedule.runtime_seconds = timing.seconds
    return schedule

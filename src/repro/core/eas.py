"""EAS Step 2: level-based scheduling, plus the top-level EAS driver.

The level-based scheduler repeatedly examines the **ready task list**
(RTL — tasks whose predecessors are all scheduled).  For every
``(task, PE)`` combination it computes the earliest finish time

    ``F(i,k) = start(i,k) + r_i_k``

where ``start(i,k)`` is the earliest gap on PE ``k`` at or after the data
ready time ``DRT(i,k)`` obtained by *tentatively* scheduling the task's
receiving transactions on the link tables (Fig. 3), restoring the tables
afterwards.  Selection then follows the paper:

* if some ready task cannot meet its budgeted deadline anywhere
  (``min_F(i) > BD_i``), the most violating one is scheduled on its
  fastest PE (performance rescue);
* otherwise each task's BD-feasible PE list ``L_i`` is formed, the
  energy regret ``δE_i = E2_i - E1_i`` is computed (``E`` includes the
  communication energy of the task's inputs, whose senders are already
  placed), and the task with the largest regret is committed to its
  minimum-energy PE.

A task with exactly one BD-feasible PE gets ``δE = +inf`` — deferring a
forced placement risks losing it, so it is treated as maximal regret
(interpretation decision; see DESIGN.md).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro import obs
from repro.arch.acg import ACG
from repro.core.comm import schedule_incoming_transactions
from repro.obs.decisions import Candidate, TaskDecision
from repro.core.slack import TaskBudget, WeightPolicy, compute_budgets, weight_var_product
from repro.ctg.graph import CTG
from repro.errors import SchedulingError
from repro.schedule.entries import TaskPlacement
from repro.schedule.overlay import ResourceTables
from repro.schedule.schedule import Schedule
from repro.schedule.table import EPS


@dataclass
class EASConfig:
    """Knobs of the EAS algorithm.

    Attributes:
        weight_policy: Step-1 slack weight function (paper default:
            ``VAR_e * VAR_r``).
        include_comm_in_slack: include mean input-transfer delay in the
            Step-1 path lengths (paper default: off).
        repair: run Step 3 (search-and-repair) when the level-based
            schedule misses deadlines.
        max_repair_rounds: safety bound on LTS/GTM alternations.
        contention_aware: schedule transactions against real link
            occupancy (the paper's approach).  When False the scheduler
            uses the fixed-delay communication model the paper's
            introduction criticises; the resulting timing is
            optimistic and its link usage may overlap — only the
            contention ablation should turn this off.
    """

    weight_policy: WeightPolicy = weight_var_product
    include_comm_in_slack: bool = False
    repair: bool = True
    max_repair_rounds: int = 64
    contention_aware: bool = True


@dataclass
class _Evaluation:
    """One F(i,k) evaluation result."""

    task: str
    pe: int
    start: float
    finish: float
    drt: float
    energy: float


@dataclass
class _SelectionOutcome:
    """Why the Step-2 selection picked its (task, PE) pair."""

    #: Rule-3 performance rescue (no PE meets the budgeted deadline).
    rescue: bool = False
    #: energy regret δE of the chosen task (None on a rescue, inf when
    #: the task had a single BD-feasible PE).
    regret: Optional[float] = None


class LevelBasedScheduler:
    """Step 2 of EAS: energy-aware list scheduling steered by budgets."""

    def __init__(
        self,
        ctg: CTG,
        acg: ACG,
        budgets: Mapping[str, TaskBudget],
        algorithm_name: str = "eas-base",
        contention_aware: bool = True,
    ) -> None:
        self.ctg = ctg
        self.acg = acg
        self.budgets = budgets
        self.algorithm_name = algorithm_name
        self.contention_aware = contention_aware
        self._tables = ResourceTables()
        self._placements: Dict[str, TaskPlacement] = {}
        ins = obs.get()
        self._ins = ins
        self._eval_counter = ins.metrics.counter("eas.evaluations")
        self._restore_counter = ins.metrics.counter("comm.table_restores")

    # -- F(i,k) evaluation --------------------------------------------------

    def _evaluate(self, task_name: str, pe_index: int) -> Optional[_Evaluation]:
        """Compute ``F(i,k)``; ``None`` when the PE type is infeasible."""
        task = self.ctg.task(task_name)
        pe = self.acg.pe(pe_index)
        cost = task.cost_on(pe.type_name)
        if not cost.feasible:
            return None
        overlay = self._tables.overlay()
        drt, comms = schedule_incoming_transactions(
            self.ctg,
            self.acg,
            task_name,
            pe_index,
            self._placements,
            overlay,
            contention_aware=self.contention_aware,
        )
        start = overlay.find_earliest(pe_index, drt, cost.time)
        overlay.drop()  # the paper's table restore
        self._eval_counter.inc()
        self._restore_counter.inc()
        comm_energy = sum(c.energy for c in comms)
        return _Evaluation(
            task=task_name,
            pe=pe_index,
            start=start,
            finish=start + cost.time,
            drt=drt,
            energy=cost.energy + comm_energy,
        )

    def _commit(self, task_name: str, pe_index: int, schedule: Schedule) -> TaskPlacement:
        """Re-run the evaluation for the chosen pair and make it permanent."""
        task = self.ctg.task(task_name)
        pe = self.acg.pe(pe_index)
        cost = task.cost_on(pe.type_name)
        overlay = self._tables.overlay()
        drt, comms = schedule_incoming_transactions(
            self.ctg,
            self.acg,
            task_name,
            pe_index,
            self._placements,
            overlay,
            contention_aware=self.contention_aware,
        )
        start = overlay.find_earliest(pe_index, drt, cost.time)
        overlay.commit()
        self._tables.reserve(pe_index, start, start + cost.time)
        placement = TaskPlacement(
            task=task_name,
            pe=pe_index,
            start=start,
            finish=start + cost.time,
            energy=cost.energy,
        )
        self._placements[task_name] = placement
        schedule.place_task(placement)
        for comm in comms:
            schedule.place_comm(comm)
        return placement

    # -- selection ------------------------------------------------------------

    def _select(
        self, evaluations: Dict[str, Dict[int, _Evaluation]]
    ) -> Tuple[str, int, _SelectionOutcome]:
        """Apply the paper's Step-2 selection rules to the current RTL."""
        min_f: Dict[str, _Evaluation] = {}
        for task_name, per_pe in evaluations.items():
            if not per_pe:
                raise SchedulingError(f"task {task_name!r} has no feasible PE")
            min_f[task_name] = min(
                per_pe.values(), key=lambda ev: (ev.finish, ev.energy, ev.pe)
            )

        # Rule 3: violating tasks go first, fastest PE wins.
        violations = [
            (min_f[t].finish - self.budgets[t].budgeted_deadline, t)
            for t in evaluations
            if min_f[t].finish > self.budgets[t].budgeted_deadline + EPS
        ]
        if violations:
            violations.sort(key=lambda item: (-item[0], item[1]))
            chosen = violations[0][1]
            return chosen, min_f[chosen].pe, _SelectionOutcome(rescue=True)

        # Rule 4: all tasks can meet their BD somewhere; maximise regret.
        # Ties: tighter (smaller) BD first, then task name, for determinism.
        best_task: Optional[str] = None
        best_key: Tuple[float, float] = (-math.inf, -math.inf)
        best_pe = -1
        for task_name in sorted(evaluations):
            per_pe = evaluations[task_name]
            bd = self.budgets[task_name].budgeted_deadline
            feasible = [ev for ev in per_pe.values() if ev.finish <= bd + EPS]
            feasible.sort(key=lambda ev: (ev.energy, ev.finish, ev.pe))
            e1 = feasible[0]
            delta = math.inf if len(feasible) == 1 else feasible[1].energy - e1.energy
            key = (delta, -bd)
            if best_task is None or key > best_key:
                best_task = task_name
                best_key = key
                best_pe = e1.pe
        assert best_task is not None
        return best_task, best_pe, _SelectionOutcome(regret=best_key[0])

    # -- main loop ----------------------------------------------------------------

    def run(self) -> Schedule:
        """Schedule every task; returns a structurally valid schedule."""
        schedule = Schedule(self.ctg, self.acg, algorithm=self.algorithm_name)
        remaining_preds: Dict[str, int] = {
            name: self.ctg.in_degree(name) for name in self.ctg.task_names()
        }
        ready = sorted(name for name, n in remaining_preds.items() if n == 0)

        ins = self._ins
        rescue_counter = ins.metrics.counter("eas.rescues")
        commit_counter = ins.metrics.counter("eas.commits")
        record_decisions = ins.decisions.enabled
        decided: List[TaskDecision] = []

        with ins.tracer.span(
            "level_schedule",
            algorithm=self.algorithm_name,
            ctg=self.ctg.name,
            tasks=self.ctg.n_tasks,
            pes=len(self.acg.pes),
        ):
            while ready:
                evaluations: Dict[str, Dict[int, _Evaluation]] = {}
                for task_name in ready:
                    per_pe: Dict[int, _Evaluation] = {}
                    for pe in self.acg.pes:
                        evaluation = self._evaluate(task_name, pe.index)
                        if evaluation is not None:
                            per_pe[pe.index] = evaluation
                    evaluations[task_name] = per_pe

                chosen_task, chosen_pe, outcome = self._select(evaluations)
                placement = self._commit(chosen_task, chosen_pe, schedule)
                commit_counter.inc()
                if outcome.rescue:
                    rescue_counter.inc()
                if record_decisions:
                    decision = TaskDecision(
                        task=chosen_task,
                        pe=chosen_pe,
                        algorithm=self.algorithm_name,
                        rescue=outcome.rescue,
                        regret=outcome.regret,
                        start=placement.start,
                        finish=placement.finish,
                        energy=placement.energy,
                        candidates=[
                            Candidate(pe=ev.pe, finish=ev.finish, energy=ev.energy)
                            for pe_index, ev in sorted(evaluations[chosen_task].items())
                            if pe_index != chosen_pe
                        ],
                    )
                    ins.decisions.record(decision)
                    decided.append(decision)

                ready.remove(chosen_task)
                for succ in self.ctg.successors(chosen_task):
                    remaining_preds[succ] -= 1
                    if remaining_preds[succ] == 0:
                        ready.append(succ)
                ready.sort()

        if len(self._placements) != self.ctg.n_tasks:
            raise SchedulingError(
                "level-based scheduling finished without placing every task"
            )
        schedule.provenance = decided
        return schedule


def eas_base_schedule(
    ctg: CTG,
    acg: ACG,
    config: Optional[EASConfig] = None,
) -> Schedule:
    """EAS without Step 3 (the paper's *EAS-base*).

    The result always satisfies the structural invariants but may miss
    deadlines on tightly constrained inputs.
    """
    cfg = config or EASConfig()
    with obs.timed_phase("eas_base", ctg=ctg.name) as timing:
        budgets = compute_budgets(
            ctg,
            acg,
            weight_policy=cfg.weight_policy,
            include_comm=cfg.include_comm_in_slack,
        )
        schedule = LevelBasedScheduler(
            ctg,
            acg,
            budgets,
            algorithm_name="eas-base" if cfg.contention_aware else "eas-base-nocontention",
            contention_aware=cfg.contention_aware,
        ).run()
    schedule.runtime_seconds = timing.seconds
    return schedule


def eas_schedule(
    ctg: CTG,
    acg: ACG,
    config: Optional[EASConfig] = None,
) -> Schedule:
    """The full EAS algorithm (Steps 1-3).

    Runs the level-based scheduler and, when the result misses deadlines
    and ``config.repair`` is on, post-processes it with search-and-repair
    (local task swapping + global task migration).
    """
    from repro.core.repair import RepairConfig, search_and_repair

    cfg = config or EASConfig()
    with obs.timed_phase("eas", ctg=ctg.name) as timing:
        schedule = eas_base_schedule(ctg, acg, cfg)
        if cfg.repair and schedule.deadline_misses():
            repaired, _report = search_and_repair(
                schedule, RepairConfig(max_rounds=cfg.max_repair_rounds)
            )
            # Repair only reorders/remaps; the level-schedule decisions
            # remain the provenance of the original placements.
            repaired.provenance = schedule.provenance
            schedule = repaired
    schedule.algorithm = "eas"
    schedule.runtime_seconds = timing.seconds
    return schedule

"""Periodic (pipelined) execution analysis.

The paper's multimedia benchmarks are frame-based: the CTG is executed
once per frame, forever, at the required frame rate (40 fps encoding =
one instance every 25 000 us).  A static schedule for one instance can
be *overlapped* with the next instances — iteration ``k`` shifted by
``k * T`` — as long as no resource is claimed by two iterations at
once.  This module answers the resulting throughput questions:

* :func:`is_periodic_feasible` — can this exact schedule repeat every
  ``T`` time units without any PE or link conflict between iterations?
* :func:`resource_bound_period` — the absolute lower bound on ``T``
  (the busiest resource's total occupancy; utilisation cannot exceed 1);
* :func:`scan_min_period` — the smallest feasible ``T`` found by
  scanning between the bound and the makespan (feasibility of modulo
  folding is not monotone in ``T``, so a scan is the honest method);
* :func:`throughput_report` — all of the above packaged, including the
  sustainable frame rate.

The check folds every busy interval modulo ``T``: iterations collide
exactly when the folded images of two intervals on one resource
overlap, so a single sorted sweep over the folded segments decides
feasibility.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, List, Tuple

from repro.errors import SchedulingError
from repro.schedule.schedule import Schedule
from repro.schedule.table import EPS

Interval = Tuple[float, float]


def _resource_intervals(schedule: Schedule) -> Dict[Hashable, List[Interval]]:
    """Busy intervals per resource (PEs by index, links by Link object)."""
    intervals: Dict[Hashable, List[Interval]] = {}
    for placement in schedule.task_placements.values():
        if placement.duration > 0:
            intervals.setdefault(placement.pe, []).append(
                (placement.start, placement.finish)
            )
    for comm in schedule.comm_placements.values():
        if comm.duration > 0:
            for link in comm.links:
                intervals.setdefault(link, []).append((comm.start, comm.finish))
    return intervals


def _fold(interval: Interval, period: float) -> List[Interval]:
    """Image of ``[start, end)`` under ``mod period`` as disjoint segments.

    An interval longer than the period covers everything (infeasible by
    construction); otherwise it folds into one segment, or two when it
    wraps past a period boundary.
    """
    start, end = interval
    length = end - start
    if length >= period - EPS:
        return [(0.0, period)]
    offset = start % period
    if offset + length <= period + EPS:
        return [(offset, min(offset + length, period))]
    return [(offset, period), (0.0, offset + length - period)]


def is_periodic_feasible(schedule: Schedule, period: float) -> bool:
    """Whether the schedule can repeat every ``period`` without conflicts.

    Iteration ``k`` runs every placement shifted by ``k * period``; the
    schedule is periodically feasible iff, per resource, the folded
    busy segments are pairwise disjoint.
    """
    if period <= 0:
        raise SchedulingError(f"period must be positive, got {period}")
    for intervals in _resource_intervals(schedule).values():
        segments: List[Interval] = []
        for interval in intervals:
            if interval[1] - interval[0] >= period - EPS:
                return False
            segments.extend(_fold(interval, period))
        segments.sort()
        for (s1, e1), (s2, e2) in zip(segments, segments[1:]):
            if s2 < e1 - EPS:
                return False
    return True


def resource_bound_period(schedule: Schedule) -> float:
    """Lower bound on any feasible period: the busiest resource's load."""
    worst = 0.0
    for intervals in _resource_intervals(schedule).values():
        busy = sum(e - s for s, e in intervals)
        worst = max(worst, busy)
    return worst


def scan_min_period(
    schedule: Schedule,
    resolution: float = 0.0,
    max_steps: int = 2_000,
) -> float:
    """Smallest feasible period found by scanning up from the bound.

    Modulo-folding feasibility is not monotone in the period, so binary
    search is unsound; this scans ``[bound, makespan]`` at
    ``resolution`` granularity (default: span/1000) and returns the
    first feasible value — the makespan itself is always feasible, so
    the scan terminates.
    """
    bound = resource_bound_period(schedule)
    makespan = schedule.makespan()
    if makespan <= 0:
        return 0.0
    if bound <= 0:
        return 0.0
    if resolution <= 0:
        resolution = max((makespan - bound) / 1000.0, makespan / 10_000.0)
    period = bound
    steps = 0
    while period < makespan and steps < max_steps:
        if is_periodic_feasible(schedule, period):
            return period
        period += resolution
        steps += 1
    return makespan


@dataclass(frozen=True)
class ThroughputReport:
    """Pipelined-execution characteristics of one schedule."""

    makespan: float
    bound_period: float
    min_period: float
    #: sustainable instances per time unit at the scanned period.
    throughput: float
    #: how much pipelining helps: makespan / min_period.
    overlap_factor: float

    def sustainable_rate(self, time_units_per_second: float) -> float:
        """Frames per second given the schedule's time-unit scale."""
        if self.min_period <= 0:
            return math.inf
        return time_units_per_second / self.min_period


def throughput_report(schedule: Schedule, resolution: float = 0.0) -> ThroughputReport:
    """Compute the full pipelined-throughput characterisation."""
    makespan = schedule.makespan()
    bound = resource_bound_period(schedule)
    min_period = scan_min_period(schedule, resolution=resolution)
    return ThroughputReport(
        makespan=makespan,
        bound_period=bound,
        min_period=min_period,
        throughput=(1.0 / min_period) if min_period > 0 else math.inf,
        overlap_factor=(makespan / min_period) if min_period > 0 else 1.0,
    )

"""Incremental rebuild engine for Step-3 repair (dirty-cone replay).

Every LTS swap and GTM migration candidate used to call
:func:`~repro.core.rebuild.rebuild_schedule`, which list-schedules *all*
tasks and replays *all* communication transactions from empty resource
tables — ``O(moves x full rebuild)``, the cost the paper's own Sec. 6.1
runtime numbers are dominated by.  This engine evaluates a candidate
move against the *delta* it induces instead:

1. **Perturbation frontier.**  The incumbent's rebuild is summarised by
   its *commit trace* (the deterministic sequence of
   :class:`~repro.core.rebuild.CommitStep` records).  A candidate move
   touches at most two PE orders and one mapping entry, so the
   candidate's own full rebuild provably follows the incumbent's trace
   step for step until the first iteration where the move can matter:
   the first step whose eligible-task set differs between the incumbent
   and candidate order tables, or where a remapped task becomes
   eligible.  Finding that frontier needs **no probing** — eligibility
   is pure precedence/order bookkeeping — and only the changed PEs have
   to be inspected per step.

2. **Clean-prefix fork.**  The state at the frontier is materialised by
   :meth:`~repro.schedule.overlay.ResourceTables.fork`-ing the
   incumbent's committed tables copy-on-write and *undoing* the
   reservations of the post-frontier commits (the dirty cone), via
   :meth:`~repro.schedule.table.ScheduleTable.truncate_from` when they
   form the tail of a resource's busy list and exact-match releases
   otherwise.  Undo work is proportional to the dirty cone, not the
   prefix, so small perturbations near the end of the schedule — the
   common case, since repair targets late critical tasks — cost almost
   nothing.

3. **Dirty-cone replay.**  From the frontier the engine runs the very
   same probe/commit loop as ``rebuild_schedule`` (shared code), so the
   result is float-exact identical to a from-scratch rebuild — the
   equivalence the randomized harness in ``tests/test_increbuild.py``
   byte-compares via serialization v2.

4. **Early-abort bounding.**  Misses and tardiness only grow as more
   tasks are committed, so the running ``(misses, tardiness)`` over the
   committed prefix+cone is a lower bound on the candidate's final
   metric.  The moment the bound stops being strictly better than the
   incumbent's metric, the candidate provably cannot be accepted and
   the replay stops.

5. **Rejected-move memoization.**  Candidates are keyed by their
   ``(mapping-delta, order-delta)`` against the incumbent; a candidate
   rejected once is never re-rebuilt against the same incumbent (the
   GTM relief sweep re-proposes many energy-sweep candidates
   verbatim).  The memo is cleared whenever a move is accepted.

Soundness arguments are spelled out in DESIGN.md ("Incremental repair
correctness"); ``RepairConfig.use_incremental`` (CLI
``--no-incremental-repair``) keeps the paper-literal full-rebuild path
as the reference implementation.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Set, Tuple

from repro import obs
from repro.arch.acg import ACG
from repro.core.rebuild import (
    CommitStep,
    _commit,
    _eligible_tasks,
    _probe,
    rebuild_schedule,
    rebuild_schedule_traced,
)
from repro.ctg.graph import CTG
from repro.errors import InfeasibleOrderError
from repro.schedule.overlay import ResourceTables
from repro.schedule.schedule import Schedule
from repro.schedule.table import EPS, Interval
from repro.schedule.serialization import schedule_to_json

MissMetric = Tuple[int, float]

#: (mapping-delta, order-delta) of a candidate against the incumbent.
MoveSignature = Tuple[
    Tuple[Tuple[str, int], ...], Tuple[Tuple[int, Tuple[str, ...]], ...]
]


def _schedule_metric(schedule: Schedule) -> MissMetric:
    """(misses, tardiness) — local twin of ``repair.miss_metric``.

    Recomputed here (not imported) because ``repro.core.repair`` imports
    this module.
    """
    return (len(schedule.deadline_misses()), schedule.total_tardiness())


class IncrementalRebuilder:
    """Evaluates candidate (mapping, orders) moves against one incumbent.

    The repair loop owns exactly one instance; :meth:`evaluate` answers
    each candidate with the schedule a full rebuild would have produced
    (or ``None`` when the candidate is infeasible, memo-rejected, or
    provably unable to beat the incumbent), and :meth:`promote` adopts
    the last winning candidate as the new incumbent.

    ``early_abort`` and ``memoize`` exist so the equivalence harness can
    exercise the pure prefix-replay path; ``selfcheck`` cross-checks
    every evaluation against a from-scratch rebuild (byte-comparing the
    v2 serialization) and turns any divergence into an assertion — the
    debug mode the randomized corpus runs under.
    """

    def __init__(
        self,
        ctg: CTG,
        acg: ACG,
        mapping: Mapping[str, int],
        orders: Mapping[int, Sequence[str]],
        algorithm: str = "rebuild",
        early_abort: bool = True,
        memoize: bool = True,
        selfcheck: bool = False,
        use_path_cache: bool = True,
    ) -> None:
        self.ctg = ctg
        self.acg = acg
        self.algorithm = algorithm
        self.early_abort = early_abort
        self.memoize = memoize
        self.selfcheck = selfcheck
        self.use_path_cache = use_path_cache
        self._in_degree: Dict[str, int] = {
            name: ctg.in_degree(name) for name in ctg.task_names()
        }
        self._task_names: List[str] = ctg.task_names()
        self._mapping0: Dict[str, int] = dict(mapping)
        self._orders0: Dict[int, List[str]] = {
            pe: list(names) for pe, names in orders.items()
        }
        self._trace: Optional[List[CommitStep]] = None
        self._final_tables: Optional[ResourceTables] = None
        self._cum_bound: List[MissMetric] = []
        self._memo: Set[MoveSignature] = set()
        self._last: Optional[Tuple[Dict[str, int], Dict[int, List[str]], List[CommitStep], ResourceTables]] = None
        metrics = obs.get().metrics
        self._replayed_counter = metrics.counter("repair.replayed_tasks")
        self._prefix_counter = metrics.counter("repair.prefix_reused_tasks")
        self._abort_counter = metrics.counter("repair.incremental_aborts")
        self._memo_counter = metrics.counter("repair.memo_skips")
        self._candidate_counter = metrics.counter("repair.incremental_candidates")
        self._probe_counter = metrics.counter("repair.frontier_probes")

    # -- incumbent bookkeeping ------------------------------------------------

    def _ensure_incumbent(self) -> None:
        """Record the incumbent's commit trace (one traced full rebuild).

        Amortized over the hundreds of candidates a repair run probes;
        accepted candidates hand their own trace over via
        :meth:`promote`, so this runs once per ``search_and_repair``.
        """
        if self._trace is not None:
            return
        _schedule, trace = rebuild_schedule_traced(
            self.ctg,
            self.acg,
            self._mapping0,
            self._orders0,
            algorithm=self.algorithm,
            use_path_cache=self.use_path_cache,
        )
        self._adopt(self._mapping0, self._orders0, trace, self._tables_of(trace))

    def _tables_of(self, trace: Sequence[CommitStep]) -> ResourceTables:
        tables = ResourceTables(use_path_cache=self.use_path_cache)
        for step in trace:
            tables.reserve(step.pe, step.placement.start, step.placement.finish)
            for comm in step.comms:
                for link in comm.links:
                    tables.reserve(link, comm.start, comm.finish)
        return tables

    def _adopt(
        self,
        mapping: Mapping[str, int],
        orders: Mapping[int, Sequence[str]],
        trace: List[CommitStep],
        tables: ResourceTables,
    ) -> None:
        self._mapping0 = dict(mapping)
        self._orders0 = {pe: list(names) for pe, names in orders.items()}
        self._trace = trace
        self._final_tables = tables
        self._cum_bound = self._bounds_of(trace)
        self._memo.clear()
        self._last = None

    def _bounds_of(self, trace: Sequence[CommitStep]) -> List[MissMetric]:
        """Cumulative (misses, tardiness) after each trace prefix.

        Accumulated in commit order — the same float-addition order
        ``Schedule.total_tardiness`` uses on a schedule whose placements
        were inserted in commit order — so prefix bounds are exact
        partial sums of the final metric.
        """
        bounds: List[MissMetric] = [(0, 0.0)]
        misses, tardiness = 0, 0.0
        for step in trace:
            deadline = self.ctg.task(step.task).deadline
            finish = step.placement.finish
            if finish > deadline + EPS:
                misses += 1
            if math.isfinite(deadline):
                tardiness += max(0.0, finish - deadline)
            bounds.append((misses, tardiness))
        return bounds

    def promote(self) -> None:
        """Adopt the last accepted candidate as the new incumbent."""
        assert self._last is not None, "promote() without a winning evaluate()"
        self._adopt(*self._last)

    # -- candidate evaluation -------------------------------------------------

    def _signature(
        self, mapping: Mapping[str, int], orders: Mapping[int, Sequence[str]]
    ) -> MoveSignature:
        mapping0, orders0 = self._mapping0, self._orders0
        map_delta = tuple(
            sorted(
                (task, pe) for task, pe in mapping.items() if mapping0.get(task) != pe
            )
        )
        order_delta = tuple(
            sorted(
                (pe, tuple(names))
                for pe, names in orders.items()
                if orders0.get(pe) != list(names)
            )
        )
        return (map_delta, order_delta)

    def _frontier(
        self,
        mapping1: Mapping[str, int],
        orders1: Mapping[int, Sequence[str]],
        changed_pes: Set[int],
        moved: Set[str],
    ) -> Tuple[int, Dict[int, int], Dict[str, int], Set[str], Dict[str, object], ResourceTables]:
        """Longest trace prefix the candidate's rebuild provably shares.

        Walks the incumbent trace with precedence/order bookkeeping.  At
        each step the candidate's commit is the incumbent's unless
        (a) the incumbent's chosen task is no longer eligible under the
        candidate orders/mapping — a *hard* divergence — or (b) a task
        the candidate makes eligible that the incumbent did not (at most
        one per changed PE) out-probes the incumbent's commit key.  Case
        (b) is decided *exactly*: probing the divergent task against the
        prefix tables reproduces the candidate rebuild's own argmin —
        every task eligible under both sides keeps its incumbent key, of
        which the incumbent's chosen key was already the minimum.  A
        migrated task therefore extends the prefix past the point where
        it merely *becomes* eligible, all the way to where it first
        *wins* a probe (or to its own incumbent commit), which is what
        makes the dirty cone small.

        Returns the full rebuild state at the frontier:
        ``(frontier, next_slot, remaining_preds, placed, placements,
        tables)``.
        """
        trace = self._trace
        orders0 = self._orders0
        remaining = dict(self._in_degree)
        placed: Set[str] = set()
        placements: Dict[str, object] = {}
        idx: Dict[int, int] = {pe: 0 for pe in orders0}
        for pe in orders1:
            idx.setdefault(pe, 0)
        successors = self.ctg.successors
        tables: Optional[ResourceTables] = None

        def next_eligible(order: Sequence[str], slot: int) -> Optional[str]:
            if slot < len(order):
                name = order[slot]
                if name not in placed and remaining[name] == 0:
                    return name
            return None

        frontier = len(trace)
        for k, step in enumerate(trace):
            chosen = step.task
            hard = chosen in moved
            if not hard and step.pe in changed_pes:
                order1 = orders1.get(step.pe, ())
                slot = idx.get(step.pe, 0)
                hard = slot >= len(order1) or order1[slot] != chosen
            if not hard:
                divergent: List[str] = []
                for pe in changed_pes:
                    slot = idx.get(pe, 0)
                    n1 = next_eligible(orders1.get(pe, ()), slot)
                    if n1 is not None and n1 != next_eligible(orders0.get(pe, ()), slot):
                        divergent.append(n1)
                if divergent:
                    if tables is None:
                        tables = self._materialize(k)
                    key_k = (step.placement.start, step.placement.finish, chosen)
                    for name in divergent:
                        start, finish = _probe(
                            self.ctg, self.acg, name, mapping1[name], placements, tables
                        )
                        self._probe_counter.inc()
                        if (start, finish, name) < key_k:
                            hard = True
                            break
            if hard:
                frontier = k
                break
            placed.add(chosen)
            placements[chosen] = step.placement
            idx[step.pe] += 1
            for succ in successors(chosen):
                remaining[succ] -= 1
            if tables is not None:
                # Keep the materialized tables in step with the prefix.
                placement = step.placement
                if placement.finish - placement.start > EPS:
                    tables.reserve(step.pe, placement.start, placement.finish)
                for comm in step.comms:
                    if comm.finish - comm.start > EPS:
                        for link in comm.links:
                            tables.reserve(link, comm.start, comm.finish)
        if tables is None:
            tables = self._materialize(frontier)
        return frontier, idx, remaining, placed, placements, tables

    def _materialize(self, frontier: int) -> ResourceTables:
        """Fork the incumbent tables and undo the dirty cone's reservations."""
        tables = self._final_tables.fork()
        undo: Dict[Hashable, List[Interval]] = {}
        for step in self._trace[frontier:]:
            placement = step.placement
            if placement.finish - placement.start > EPS:
                undo.setdefault(step.pe, []).append((placement.start, placement.finish))
            for comm in step.comms:
                if comm.finish - comm.start > EPS:
                    for link in comm.links:
                        undo.setdefault(link, []).append((comm.start, comm.finish))
        for resource, intervals in undo.items():
            intervals.sort()
            # Zero-copy read: compared, never mutated (the slice copies).
            busy = tables.busy_view(resource)
            tail_at = bisect_left(busy, (intervals[0][0], -math.inf))
            if busy[tail_at:] == intervals:
                tables.truncate_from(resource, intervals[0][0])
            else:
                for start, end in intervals:
                    tables.release(resource, start, end)
        return tables

    def evaluate(
        self,
        mapping: Mapping[str, int],
        orders: Mapping[int, Sequence[str]],
        incumbent_metric: MissMetric,
    ) -> Optional[Schedule]:
        """The schedule a full rebuild of the candidate would produce.

        Returns ``None`` when the candidate cannot be accepted — its
        orders deadlock, its bounded metric provably cannot beat
        ``incumbent_metric``, or it was already rejected against this
        incumbent.  A non-``None`` result is float-exact identical to
        ``rebuild_schedule(ctg, acg, mapping, orders)``; when its metric
        beats the incumbent the caller may :meth:`promote` it.
        """
        self._last = None
        self._candidate_counter.inc()
        signature = self._signature(mapping, orders)
        if self.memoize and signature in self._memo:
            self._memo_counter.inc()
            return None
        self._ensure_incumbent()

        moved = {task for task, _pe in signature[0]}
        changed_pes = {pe for pe, _names in signature[1]}
        frontier, next_slot, remaining, placed, placements, tables = self._frontier(
            mapping, orders, changed_pes, moved
        )
        self._prefix_counter.inc(frontier)
        bound = self._cum_bound[frontier]
        if self.early_abort and not bound < incumbent_metric:
            self._abort_counter.inc()
            self._memo.add(signature)
            self._crosscheck(None, mapping, orders, incumbent_metric, aborted=True)
            return None

        try:
            schedule, trace, tables = self._replay(
                mapping, orders, frontier, next_slot, remaining, placed,
                placements, tables, bound, incumbent_metric,
            )
        except InfeasibleOrderError:
            self._memo.add(signature)
            self._crosscheck(None, mapping, orders, incumbent_metric, aborted=False)
            return None
        if schedule is None:  # aborted mid-replay
            self._abort_counter.inc()
            self._memo.add(signature)
            self._crosscheck(None, mapping, orders, incumbent_metric, aborted=True)
            return None

        if _schedule_metric(schedule) < incumbent_metric:
            self._last = (
                dict(mapping),
                {pe: list(names) for pe, names in orders.items()},
                trace,
                tables,
            )
        else:
            self._memo.add(signature)
        self._crosscheck(schedule, mapping, orders, incumbent_metric, aborted=False)
        return schedule

    def _replay(
        self,
        mapping: Mapping[str, int],
        orders: Mapping[int, Sequence[str]],
        frontier: int,
        next_slot: Dict[int, int],
        remaining_preds: Dict[str, int],
        placed: Set[str],
        placements: Dict[str, object],
        tables: ResourceTables,
        bound: MissMetric,
        incumbent_metric: MissMetric,
    ) -> Tuple[Optional[Schedule], List[CommitStep], ResourceTables]:
        """Replay the dirty cone through the shared probe/commit loop."""
        ctg, acg = self.ctg, self.acg
        prefix = self._trace[:frontier]
        schedule = Schedule(ctg, acg, algorithm=self.algorithm)
        for step in prefix:
            schedule.place_task(step.placement)
            for comm in step.comms:
                schedule.place_comm(comm)
        unplaced = {name for name in self._task_names if name not in placed}
        trace = list(prefix)
        misses, tardiness = bound
        replayed = 0
        task_of = ctg.task

        while unplaced:
            eligible = _eligible_tasks(
                ctg, mapping, orders, next_slot, remaining_preds, unplaced
            )
            if not eligible:
                self._replayed_counter.inc(replayed)
                raise InfeasibleOrderError(
                    "per-PE orders deadlock against CTG precedence; "
                    f"{len(unplaced)} tasks stuck"
                )
            best: Optional[Tuple[float, float, str]] = None
            for name in eligible:
                start, finish = _probe(ctg, acg, name, mapping[name], placements, tables)
                key = (start, finish, name)
                if best is None or key < best:
                    best = key
            chosen = best[2]
            placement, comms = _commit(
                ctg, acg, chosen, mapping[chosen], placements, tables, schedule
            )
            replayed += 1
            trace.append(
                CommitStep(task=chosen, pe=placement.pe, placement=placement, comms=tuple(comms))
            )
            unplaced.discard(chosen)
            next_slot[mapping[chosen]] += 1
            for succ in ctg.successors(chosen):
                remaining_preds[succ] -= 1
            deadline = task_of(chosen).deadline
            if placement.finish > deadline + EPS:
                misses += 1
            if math.isfinite(deadline):
                tardiness += max(0.0, placement.finish - deadline)
            if self.early_abort and not (misses, tardiness) < incumbent_metric:
                self._replayed_counter.inc(replayed)
                return None, trace, tables

        self._replayed_counter.inc(replayed)
        return schedule, trace, tables

    # -- selfcheck (debug / equivalence harness) ------------------------------

    def _crosscheck(
        self,
        schedule: Optional[Schedule],
        mapping: Mapping[str, int],
        orders: Mapping[int, Sequence[str]],
        incumbent_metric: MissMetric,
        aborted: bool,
    ) -> None:
        """Assert this evaluation agrees with a from-scratch rebuild."""
        if not self.selfcheck:
            return
        try:
            full = rebuild_schedule(
                self.ctg,
                self.acg,
                mapping,
                orders,
                algorithm=self.algorithm,
                use_path_cache=self.use_path_cache,
            )
        except InfeasibleOrderError:
            full = None
        if schedule is not None:
            assert full is not None, "incremental built a schedule the full rebuild rejects"
            assert schedule_to_json(schedule) == schedule_to_json(full), (
                "incremental rebuild diverged from full rebuild"
            )
        elif aborted:
            # An abort claims the candidate cannot beat the incumbent.
            assert full is None or not _schedule_metric(full) < incumbent_metric, (
                "early abort rejected a candidate that beats the incumbent"
            )
        else:
            assert full is None, "incremental raised InfeasibleOrderError, full rebuild did not"

"""EAS Step 1: budget slack allocation (paper Sec. 5, Step 1).

For each task three platform statistics are computed — ``VAR_e`` (energy
variance across PEs), ``VAR_r`` (execution-time variance) and ``M_t``
(mean execution time) — and a weight ``W_t = VAR_e * VAR_r``.  The slack
of every deadline-constrained path is then split among the path's tasks
proportionally to their weights, giving each task a **budgeted deadline
(BD)**: the internal per-task deadline the level-based scheduler steers
by.  High-weight tasks (whose PE choice matters most) receive more slack
and therefore more placement freedom.

Generalisation to DAGs (the paper shows only a chain): for every deadline
task ``t_d`` we run a longest-mean-path DP over the ancestor cone of
``t_d``.  The binding path through a task ``i`` is the max-mean prefix
into ``i`` joined with the max-mean suffix from ``i`` to ``t_d``; the
slack of *that* path is distributed along it by weight, and ``BD(i)`` is
the prefix sum at ``i``.  The final budget is the minimum over all
deadline tasks reachable from ``i``.  On a chain this reduces exactly to
the paper's Fig. 2 example.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Sequence, Tuple

from repro import obs
from repro.arch.acg import ACG
from repro.ctg.graph import CTG
from repro.ctg.task import TaskStats
from repro.errors import SchedulingError

WeightPolicy = Callable[[TaskStats], float]


def weight_var_product(stats: TaskStats) -> float:
    """The paper's weight: ``W = VAR_e * VAR_r``."""
    return stats.var_energy * stats.var_time


def weight_var_energy(stats: TaskStats) -> float:
    """Ablation variant: energy variance only."""
    return stats.var_energy


def weight_var_time(stats: TaskStats) -> float:
    """Ablation variant: execution-time variance only."""
    return stats.var_time


def weight_uniform(stats: TaskStats) -> float:
    """Ablation variant: uniform slack split (ignores heterogeneity)."""
    return 1.0


WEIGHT_POLICIES: Dict[str, WeightPolicy] = {
    "var-product": weight_var_product,
    "var-energy": weight_var_energy,
    "var-time": weight_var_time,
    "uniform": weight_uniform,
}


@dataclass
class TaskBudget:
    """Step-1 outputs for one task."""

    task: str
    mean_time: float
    weight: float
    budgeted_deadline: float
    stats: TaskStats

    def __repr__(self) -> str:
        return (
            f"TaskBudget({self.task}, M={self.mean_time:g}, W={self.weight:g}, "
            f"BD={self.budgeted_deadline:g})"
        )


def compute_budgets(
    ctg: CTG,
    acg: ACG,
    weight_policy: WeightPolicy = weight_var_product,
    include_comm: bool = False,
) -> Dict[str, TaskBudget]:
    """Compute the budgeted deadline of every task.

    Args:
        ctg: the application graph.
        acg: the platform (supplies the PE-instance list for the
            statistics).
        weight_policy: maps :class:`TaskStats` to the slack weight
            ``W_t``; defaults to the paper's variance product.
        include_comm: when True, each task's path contribution also
            includes the mean delay of its largest incoming transfer — a
            pessimism knob; the paper's example budgets execution time
            only (the default).

    Returns:
        task name -> :class:`TaskBudget`; tasks from which no deadline is
        reachable get ``budgeted_deadline = inf``.
    """
    ins = obs.get()
    with ins.tracer.span("slack_budgeting", ctg=ctg.name, tasks=ctg.n_tasks) as span:
        budgets = _compute_budgets_impl(ctg, acg, weight_policy, include_comm)
        ins.metrics.counter("slack.budgets_computed").inc(len(budgets))
        span.set_attribute("deadline_tasks", len(ctg.deadline_tasks()))
        return budgets


def _compute_budgets_impl(
    ctg: CTG,
    acg: ACG,
    weight_policy: WeightPolicy,
    include_comm: bool,
) -> Dict[str, TaskBudget]:
    pe_types = acg.pe_type_names()
    stats: Dict[str, TaskStats] = {}
    mean_time: Dict[str, float] = {}
    weight: Dict[str, float] = {}
    for task in ctg.tasks():
        s = task.stats_over(pe_types)
        stats[task.name] = s
        mean_time[task.name] = s.mean_time
        weight[task.name] = weight_policy(s)
        if weight[task.name] < 0:
            raise SchedulingError(f"weight policy returned negative weight for {task.name!r}")

    path_value = dict(mean_time)
    if include_comm:
        for name in ctg.task_names():
            in_edges = ctg.in_edges(name)
            if in_edges:
                worst = max(
                    ctg_edge.volume / acg.link_bandwidth for ctg_edge in in_edges
                )
                path_value[name] = path_value[name] + worst

    topo = ctg.topological_order()
    budgets: Dict[str, float] = {name: math.inf for name in topo}

    for deadline_task in ctg.deadline_tasks():
        deadline = ctg.task(deadline_task).deadline
        cone = ctg.ancestors(deadline_task)
        cone.add(deadline_task)
        up_m, up_w = _paired_forward(ctg, topo, cone, path_value, weight)
        down_m, down_w = _paired_backward(ctg, topo, cone, path_value, weight)
        for name in cone:
            total_m = up_m[name] + down_m[name] - path_value[name]
            total_w = up_w[name] + down_w[name] - weight[name]
            slack = deadline - total_m
            if total_w > 0:
                share = up_w[name] / total_w
            elif total_m > 0:
                # Degenerate all-zero weights: fall back to time-proportional.
                share = up_m[name] / total_m
            else:
                share = 1.0
            bd = up_m[name] + slack * share
            if bd < budgets[name]:
                budgets[name] = bd

    # Final consistency pass: a task must finish early enough for every
    # successor to still complete within its own budget, i.e.
    # ``BD(i) <= BD(j) - M_j`` along every edge.  The per-deadline DP can
    # violate this on DAGs where the max-mean path into a task carries a
    # different weight mass than its successor's (the chain case is
    # always consistent, so the paper's example is unaffected).
    for name in reversed(topo):
        for succ in ctg.successors(name):
            candidate = budgets[succ] - mean_time[succ]
            if candidate < budgets[name]:
                budgets[name] = candidate

    return {
        name: TaskBudget(
            task=name,
            mean_time=mean_time[name],
            weight=weight[name],
            budgeted_deadline=budgets[name],
            stats=stats[name],
        )
        for name in topo
    }


def _paired_forward(
    ctg: CTG,
    topo: Sequence[str],
    cone: set,
    value: Dict[str, float],
    weight: Dict[str, float],
) -> Tuple[Dict[str, float], Dict[str, float]]:
    """Longest-value prefix DP carrying the weight sum of the argmax path.

    ``up_m[i]`` is the largest value-sum over paths from any source to
    ``i`` inclusive (within the cone); ``up_w[i]`` is the weight-sum along
    that same path (ties broken toward larger weight-sum, so slack shares
    stay well defined).
    """
    up_m: Dict[str, float] = {}
    up_w: Dict[str, float] = {}
    for name in topo:
        if name not in cone:
            continue
        best_m = 0.0
        best_w = 0.0
        for pred in ctg.predecessors(name):
            if pred not in cone:
                continue
            cand_m, cand_w = up_m[pred], up_w[pred]
            if cand_m > best_m or (cand_m == best_m and cand_w > best_w):
                best_m, best_w = cand_m, cand_w
        up_m[name] = best_m + value[name]
        up_w[name] = best_w + weight[name]
    return up_m, up_w


def _paired_backward(
    ctg: CTG,
    topo: Sequence[str],
    cone: set,
    value: Dict[str, float],
    weight: Dict[str, float],
) -> Tuple[Dict[str, float], Dict[str, float]]:
    """Mirror of :func:`_paired_forward` toward the deadline task."""
    down_m: Dict[str, float] = {}
    down_w: Dict[str, float] = {}
    for name in reversed(list(topo)):
        if name not in cone:
            continue
        best_m = 0.0
        best_w = 0.0
        for succ in ctg.successors(name):
            if succ not in cone:
                continue
            cand_m, cand_w = down_m[succ], down_w[succ]
            if cand_m > best_m or (cand_m == best_m and cand_w > best_w):
                best_m, best_w = cand_m, cand_w
        down_m[name] = best_m + value[name]
        down_w[name] = best_w + weight[name]
    return down_m, down_w

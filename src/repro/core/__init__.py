"""The paper's contribution: the Energy-Aware Scheduling (EAS) algorithm.

* :mod:`repro.core.slack` — Step 1, budgeted-deadline computation;
* :mod:`repro.core.comm` — the Fig. 3 communication scheduler;
* :mod:`repro.core.eas` — Step 2, level-based scheduling, and the EAS
  driver;
* :mod:`repro.core.rebuild` — deterministic schedule reconstruction from
  a (mapping, per-PE order) pair;
* :mod:`repro.core.repair` — Step 3, search-and-repair (LTS + GTM).
"""

from repro.core.slack import (
    TaskBudget,
    WEIGHT_POLICIES,
    compute_budgets,
    weight_uniform,
    weight_var_energy,
    weight_var_product,
)
from repro.core.comm import schedule_incoming_transactions
from repro.core.dvs import DVSConfig, DVSReport, apply_dvs
from repro.core.eas import EASConfig, eas_base_schedule, eas_schedule, LevelBasedScheduler
from repro.core.periodic import (
    ThroughputReport,
    is_periodic_feasible,
    resource_bound_period,
    scan_min_period,
    throughput_report,
)
from repro.core.rebuild import rebuild_schedule
from repro.core.repair import RepairConfig, RepairReport, search_and_repair

__all__ = [
    "DVSConfig",
    "DVSReport",
    "EASConfig",
    "apply_dvs",
    "LevelBasedScheduler",
    "RepairConfig",
    "RepairReport",
    "TaskBudget",
    "ThroughputReport",
    "WEIGHT_POLICIES",
    "is_periodic_feasible",
    "resource_bound_period",
    "scan_min_period",
    "throughput_report",
    "compute_budgets",
    "eas_base_schedule",
    "eas_schedule",
    "rebuild_schedule",
    "schedule_incoming_transactions",
    "search_and_repair",
    "weight_uniform",
    "weight_var_energy",
    "weight_var_product",
]

"""The standard Earliest-Deadline-First scheduler (paper Sec. 6 baseline).

A performance-oriented list scheduler: among the ready tasks it always
serves the one with the earliest *effective* deadline (specified
deadlines propagated backwards through the graph so interior tasks are
orderable), and maps it to the PE giving the earliest finish time —
communication transactions are scheduled with the same Fig. 3 machinery
and the same contention model as EAS, so the comparison isolates the
*selection policy* (performance-greedy vs energy-aware), exactly what the
paper's experiments contrast.

Energy never enters the decisions, which is why EDF's schedules land on
fast, energy-hungry PEs and scatter communicating tasks: the behaviour
the paper quantifies as 39-55 % extra energy.
"""

from __future__ import annotations

import math
from typing import Dict, List

from repro import obs
from repro.arch.acg import ACG
from repro.core.comm import schedule_incoming_transactions
from repro.ctg.analysis import effective_deadlines
from repro.ctg.graph import CTG
from repro.errors import SchedulingError
from repro.obs.decisions import Candidate, TaskDecision
from repro.schedule.entries import TaskPlacement
from repro.schedule.overlay import ResourceTables
from repro.schedule.schedule import Schedule


def edf_schedule(ctg: CTG, acg: ACG) -> Schedule:
    """Schedule ``ctg`` on ``acg`` with EDF task selection.

    Returns a structurally valid schedule; deadline satisfaction is not
    guaranteed (EDF is a heuristic here too — the mapping problem is
    NP-hard either way).
    """
    ins = obs.get()
    eval_counter = ins.metrics.counter("edf.evaluations")
    record_decisions = ins.decisions.enabled
    decided: List[TaskDecision] = []

    with obs.timed_phase("edf", ctg=ctg.name) as timing:
        schedule = Schedule(ctg, acg, algorithm="edf")
        tables = ResourceTables()
        placements: Dict[str, TaskPlacement] = {}
        eff_deadline = effective_deadlines(ctg, acg.pe_type_names())

        remaining_preds = {name: ctg.in_degree(name) for name in ctg.task_names()}
        ready = sorted(name for name, n in remaining_preds.items() if n == 0)

        while ready:
            # EDF selection: earliest effective deadline; ties by name.
            chosen = min(ready, key=lambda name: (eff_deadline[name], name))

            best_pe = -1
            best_key = (math.inf, math.inf, math.inf)
            task = ctg.task(chosen)
            candidates: List[Candidate] = []
            for pe in acg.pes:
                cost = task.cost_on(pe.type_name)
                if not cost.feasible:
                    continue
                overlay = tables.overlay()
                drt, _comms = schedule_incoming_transactions(
                    ctg, acg, chosen, pe.index, placements, overlay
                )
                start = overlay.find_earliest(pe.index, drt, cost.time)
                overlay.drop()
                eval_counter.inc()
                finish = start + cost.time
                if record_decisions:
                    candidates.append(
                        Candidate(
                            pe=pe.index,
                            finish=finish,
                            energy=cost.energy,
                            start=start,
                            drt=drt,
                            compute_energy=cost.energy,
                        )
                    )
                # Performance-greedy: earliest finish; energy is NOT considered.
                key = (finish, start, pe.index)
                if key < best_key:
                    best_key = key
                    best_pe = pe.index
            if best_pe < 0:
                raise SchedulingError(f"task {chosen!r} has no feasible PE")

            placement = _commit(ctg, acg, chosen, best_pe, placements, tables, schedule)
            if record_decisions:
                decision = TaskDecision(
                    task=chosen,
                    pe=best_pe,
                    algorithm="edf",
                    start=placement.start,
                    finish=placement.finish,
                    energy=placement.energy,
                    chosen=next((c for c in candidates if c.pe == best_pe), None),
                    candidates=[c for c in candidates if c.pe != best_pe],
                )
                ins.decisions.record(decision)
                decided.append(decision)
            ready.remove(chosen)
            for succ in ctg.successors(chosen):
                remaining_preds[succ] -= 1
                if remaining_preds[succ] == 0:
                    ready.append(succ)
            ready.sort()

    schedule.provenance = decided
    schedule.runtime_seconds = timing.seconds
    return schedule


def _commit(
    ctg: CTG,
    acg: ACG,
    task_name: str,
    pe_index: int,
    placements: Dict[str, TaskPlacement],
    tables: ResourceTables,
    schedule: Schedule,
) -> TaskPlacement:
    cost = ctg.task(task_name).cost_on(acg.pe(pe_index).type_name)
    overlay = tables.overlay()
    drt, comms = schedule_incoming_transactions(
        ctg, acg, task_name, pe_index, placements, overlay
    )
    start = overlay.find_earliest(pe_index, drt, cost.time)
    overlay.commit()
    tables.reserve(pe_index, start, start + cost.time)
    placement = TaskPlacement(
        task=task_name, pe=pe_index, start=start, finish=start + cost.time, energy=cost.energy
    )
    placements[task_name] = placement
    schedule.place_task(placement)
    for comm in comms:
        schedule.place_comm(comm)
    return placement

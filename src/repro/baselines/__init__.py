"""Comparator schedulers.

:func:`edf_schedule` is the paper's baseline — a standard
earliest-deadline-first list scheduler that optimises performance and
ignores energy.  The greedy/random schedulers are additional reference
points used by tests and ablations.
"""

from repro.baselines.edf import edf_schedule
from repro.baselines.greedy import greedy_energy_schedule, random_schedule
from repro.baselines.optimal import OptimalResult, optimal_schedule

__all__ = [
    "OptimalResult",
    "edf_schedule",
    "greedy_energy_schedule",
    "optimal_schedule",
    "random_schedule",
]

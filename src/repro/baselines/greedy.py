"""Additional reference schedulers: energy-greedy and random.

Neither is in the paper; both bracket the EAS/EDF comparison.

* :func:`greedy_energy_schedule` is the energy-myopic extreme: every
  task goes to its locally cheapest PE with no deadline awareness — a
  lower-is-not-always-feasible reference for energy.
* :func:`random_schedule` maps tasks uniformly at random (feasible types
  only); useful as a statistical null and in property tests.
"""

from __future__ import annotations

import math
from typing import Dict, List

from repro import obs
from repro.arch.acg import ACG
from repro.core.comm import incoming_comm_energy, schedule_incoming_transactions
from repro.core.rebuild import rebuild_schedule
from repro.ctg.graph import CTG
from repro.errors import SchedulingError
from repro.obs.decisions import Candidate, TaskDecision
from repro.rng import RandomLike, make_rng
from repro.schedule.entries import TaskPlacement
from repro.schedule.overlay import ResourceTables
from repro.schedule.schedule import Schedule


def greedy_energy_schedule(ctg: CTG, acg: ACG) -> Schedule:
    """Map each ready task to the PE minimising its marginal energy.

    The marginal energy of task ``i`` on PE ``k`` is its computation
    energy plus the network energy of its already-placed inputs — the
    same ``E1`` quantity EAS uses, but applied greedily with no deadline
    budget at all.
    """
    ins = obs.get()
    eval_counter = ins.metrics.counter("greedy.evaluations")
    record_decisions = ins.decisions.enabled
    decided: List[TaskDecision] = []

    with obs.timed_phase("greedy_energy", ctg=ctg.name) as timing:
        schedule = Schedule(ctg, acg, algorithm="greedy-energy")
        tables = ResourceTables()
        placements: Dict[str, TaskPlacement] = {}
        mapping: Dict[str, int] = {}

        remaining_preds = {name: ctg.in_degree(name) for name in ctg.task_names()}
        ready = sorted(name for name, n in remaining_preds.items() if n == 0)

        while ready:
            chosen = ready[0]  # FIFO over a sorted ready list: deterministic
            task = ctg.task(chosen)
            best_pe = -1
            best_energy = math.inf
            candidates: List[Candidate] = []
            for pe in acg.pes:
                cost = task.cost_on(pe.type_name)
                if not cost.feasible:
                    continue
                energy = cost.energy + incoming_comm_energy(ctg, acg, chosen, pe.index, mapping)
                eval_counter.inc()
                if record_decisions:
                    candidates.append(Candidate(pe=pe.index, energy=energy))
                if energy < best_energy:
                    best_energy = energy
                    best_pe = pe.index
            if best_pe < 0:
                raise SchedulingError(f"task {chosen!r} has no feasible PE")

            cost = task.cost_on(acg.pe(best_pe).type_name)
            overlay = tables.overlay()
            drt, comms = schedule_incoming_transactions(
                ctg, acg, chosen, best_pe, placements, overlay
            )
            start = overlay.find_earliest(best_pe, drt, cost.time)
            overlay.commit()
            tables.reserve(best_pe, start, start + cost.time)
            placement = TaskPlacement(
                task=chosen, pe=best_pe, start=start, finish=start + cost.time, energy=cost.energy
            )
            placements[chosen] = placement
            mapping[chosen] = best_pe
            schedule.place_task(placement)
            for comm in comms:
                schedule.place_comm(comm)
            if record_decisions:
                decision = TaskDecision(
                    task=chosen,
                    pe=best_pe,
                    algorithm="greedy-energy",
                    start=placement.start,
                    finish=placement.finish,
                    energy=placement.energy,
                    candidates=[c for c in candidates if c.pe != best_pe],
                )
                ins.decisions.record(decision)
                decided.append(decision)

            ready.remove(chosen)
            for succ in ctg.successors(chosen):
                remaining_preds[succ] -= 1
                if remaining_preds[succ] == 0:
                    ready.append(succ)
            ready.sort()

    schedule.provenance = decided
    schedule.runtime_seconds = timing.seconds
    return schedule


def random_schedule(ctg: CTG, acg: ACG, seed: RandomLike = None) -> Schedule:
    """Uniform random feasible mapping, rebuilt with topological orders."""
    rng = make_rng(seed)
    mapping: Dict[str, int] = {}
    for task in ctg.tasks():
        candidates = [
            pe.index for pe in acg.pes if task.cost_on(pe.type_name).feasible
        ]
        if not candidates:
            raise SchedulingError(f"task {task.name!r} has no feasible PE")
        mapping[task.name] = rng.choice(candidates)

    orders: Dict[int, list] = {pe.index: [] for pe in acg.pes}
    for name in ctg.topological_order():
        orders[mapping[name]].append(name)

    with obs.timed_phase("random", ctg=ctg.name) as timing:
        schedule = rebuild_schedule(ctg, acg, mapping, orders, algorithm="random")
    schedule.runtime_seconds = timing.seconds
    return schedule

"""Exact minimum-energy mapping by branch-and-bound (small instances).

The paper notes the problem is NP-hard [16] and offers a heuristic; to
*measure* how good the heuristic is, this module computes the exact
optimum for small CTGs: it enumerates every task-to-PE mapping with
branch-and-bound on the Eq. 3 energy objective, timing each candidate
mapping with the same deterministic rebuild (and therefore the same
contention model) the repair step uses, and keeping the cheapest
mapping that meets all deadlines.

"Exact" means exact over the mapping space crossed with the library's
deterministic timing policy (per-PE execution in effective-deadline
order).  Orderings are not enumerated — for the graph sizes this is
meant for (<= ~10 tasks) the mapping choice dominates, and the energy
objective itself depends on the mapping only, so the returned *energy*
is a true lower bound among deadline-feasible mappings under that
policy.

Complexity is O(P^V) worst case; the bound prunes most branches.  A
hard ``max_tasks`` guard protects against accidental explosion.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.arch.acg import ACG
from repro.core.rebuild import rebuild_schedule
from repro.ctg.analysis import effective_deadlines
from repro.ctg.graph import CTG
from repro.errors import InfeasibleOrderError, SchedulingError
from repro.schedule.schedule import Schedule

#: Refuse instances whose search space would be astronomically large.
DEFAULT_MAX_TASKS = 12


@dataclass
class OptimalResult:
    """Outcome of the exact search."""

    schedule: Optional[Schedule]
    energy: float
    mappings_enumerated: int
    mappings_timed: int

    @property
    def feasible(self) -> bool:
        return self.schedule is not None


def optimal_schedule(
    ctg: CTG,
    acg: ACG,
    require_deadlines: bool = True,
    max_tasks: int = DEFAULT_MAX_TASKS,
) -> OptimalResult:
    """Exact minimum-energy (deadline-feasible) mapping.

    Args:
        ctg: the application (at most ``max_tasks`` tasks).
        acg: the platform.
        require_deadlines: when True (default) only mappings whose
            rebuilt timing meets every deadline are candidates; when
            False the unconstrained energy optimum is returned (useful
            as an absolute lower bound).
        max_tasks: hard instance-size guard.

    Returns:
        :class:`OptimalResult`; ``schedule`` is ``None`` when no mapping
        is deadline-feasible under the timing policy.
    """
    names = ctg.topological_order()
    if len(names) > max_tasks:
        raise SchedulingError(
            f"exact search limited to {max_tasks} tasks; got {len(names)} "
            "(raise max_tasks explicitly if you really mean it)"
        )

    # Per-task feasible PE lists with computation energies, cheapest first
    # (greedy descent reaches good incumbents early -> stronger pruning).
    options: List[List[Tuple[float, int]]] = []
    for name in names:
        task = ctg.task(name)
        feasible = sorted(
            (task.energy_on(acg.pe(k).type_name), k)
            for k in range(acg.n_pes)
            if task.cost_on(acg.pe(k).type_name).feasible
        )
        if not feasible:
            raise SchedulingError(f"task {name!r} has no feasible PE")
        options.append(feasible)

    # Lower bound on the remaining computation energy from task i on.
    min_comp_suffix = [0.0] * (len(names) + 1)
    for i in range(len(names) - 1, -1, -1):
        min_comp_suffix[i] = min_comp_suffix[i + 1] + options[i][0][0]

    index_of = {name: i for i, name in enumerate(names)}
    in_edges_resolved: List[List[Tuple[int, float]]] = []
    for name in names:
        resolved = []
        for edge in ctg.in_edges(name):
            resolved.append((index_of[edge.src], edge.volume))
        in_edges_resolved.append(resolved)

    eff_deadline = effective_deadlines(ctg, acg.pe_type_names())

    best_energy = math.inf
    best_schedule: Optional[Schedule] = None
    counters = {"enumerated": 0, "timed": 0}
    assignment: List[int] = [0] * len(names)

    def time_and_check(mapping: Dict[str, int]) -> Optional[Schedule]:
        orders: Dict[int, List[str]] = {pe.index: [] for pe in acg.pes}
        # Deterministic policy: effective-deadline order per PE, ties
        # broken topologically so same-PE chains are never inverted.
        for name in sorted(names, key=lambda n: (eff_deadline[n], index_of[n])):
            orders[mapping[name]].append(name)
        try:
            return rebuild_schedule(ctg, acg, mapping, orders, algorithm="optimal")
        except InfeasibleOrderError:
            return None

    def recurse(i: int, energy_so_far: float) -> None:
        nonlocal best_energy, best_schedule
        if energy_so_far + min_comp_suffix[i] >= best_energy:
            return
        if i == len(names):
            counters["enumerated"] += 1
            mapping = {names[j]: assignment[j] for j in range(len(names))}
            counters["timed"] += 1
            schedule = time_and_check(mapping)
            if schedule is None:
                return
            if require_deadlines and schedule.deadline_misses():
                return
            total = schedule.total_energy()
            if total < best_energy:
                best_energy = total
                best_schedule = schedule
            return
        for comp_energy, pe_index in options[i]:
            comm_energy = 0.0
            for src_idx, volume in in_edges_resolved[i]:
                comm_energy += acg.comm_energy(volume, assignment[src_idx], pe_index)
            branch = energy_so_far + comp_energy + comm_energy
            if branch + min_comp_suffix[i + 1] >= best_energy:
                continue
            assignment[i] = pe_index
            recurse(i + 1, branch)

    recurse(0, 0.0)
    return OptimalResult(
        schedule=best_schedule,
        energy=best_energy if best_schedule is not None else math.inf,
        mappings_enumerated=counters["enumerated"],
        mappings_timed=counters["timed"],
    )

#!/usr/bin/env python3
"""The paper's Sec. 6.1 experiment: random TGFF-style benchmark suites.

Generates both benchmark categories (category II has tighter deadlines),
schedules each graph on a 4x4 heterogeneous mesh with EAS-base, EAS and
EDF, and prints Fig. 5 / Fig. 6 style comparisons plus the repair
statistics the paper discusses (misses fixed, runtime overhead).

Run:  python examples/random_benchmarks.py [n_tasks] [n_benchmarks]
(defaults: 100 tasks, 5 benchmarks — the paper uses 500 tasks, 10 graphs;
pass `500 10` to reproduce that scale, ~minutes of runtime)
"""

import sys
import time

from repro import eas_base_schedule, eas_schedule, edf_schedule, generate_category, mesh_4x4


def run_category(category: int, n_tasks: int, n_benchmarks: int) -> None:
    label = "I" * category
    print(f"== Category {label} ({n_benchmarks} graphs, {n_tasks} tasks each, 4x4 mesh) ==")
    ratios = []
    for index in range(n_benchmarks):
        ctg = generate_category(category, index, n_tasks=n_tasks)
        acg = mesh_4x4(shuffle_seed=100 + index)

        t0 = time.perf_counter()
        base = eas_base_schedule(ctg, acg)
        t_base = time.perf_counter() - t0

        t0 = time.perf_counter()
        eas = eas_schedule(ctg, acg)
        t_eas = time.perf_counter() - t0

        edf = edf_schedule(ctg, acg)
        ratios.append(edf.total_energy() / eas.total_energy())

        note = ""
        if base.deadline_misses():
            note = (
                f"  <- EAS-base missed {len(base.deadline_misses())} deadline(s); "
                f"repair {'fixed all' if eas.meets_deadlines else 'left some'} "
                f"(runtime {t_base:.2f}s -> {t_eas:.2f}s)"
            )
        print(
            f"  {ctg.name:>8}: EAS-base {base.total_energy():.4g}  "
            f"EAS {eas.total_energy():.4g}  EDF {edf.total_energy():.4g} nJ{note}"
        )
    extra = 100 * (sum(ratios) / len(ratios) - 1)
    print(f"  EDF consumes on average {extra:.0f}% more energy than EAS "
          f"(paper: +55% cat I / +39% cat II)\n")


def main() -> None:
    n_tasks = int(sys.argv[1]) if len(sys.argv) > 1 else 100
    n_benchmarks = int(sys.argv[2]) if len(sys.argv) > 2 else 5
    for category in (1, 2):
        run_category(category, n_tasks, n_benchmarks)


if __name__ == "__main__":
    main()

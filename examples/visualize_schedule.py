#!/usr/bin/env python3
"""Rendering schedules: ASCII Gantt, SVG Gantt, SVG platform view.

Schedules the integrated A/V system with EAS and EDF and writes SVG
visualisations next to this script — open them in a browser to see the
mapping difference that produces the energy gap (EAS clusters work on
the frugal tiles and keeps communicating tasks adjacent; EDF scatters
onto the fast tiles).

Run:  python examples/visualize_schedule.py [output_dir]
"""

import pathlib
import sys

from repro import av_integrated_ctg, eas_schedule, edf_schedule, mesh_3x3, render_gantt
from repro.evalx.analysis import compare_schedules, utilization_table
from repro.schedule.svg import render_platform_svg, render_schedule_svg


def main() -> None:
    out_dir = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else ".")
    out_dir.mkdir(parents=True, exist_ok=True)

    ctg = av_integrated_ctg("foreman")
    acg = mesh_3x3()
    eas = eas_schedule(ctg, acg)
    edf = edf_schedule(ctg, acg)

    print(compare_schedules(eas, edf).describe())
    print()
    print(utilization_table(eas))
    print()
    print(render_gantt(eas, width=70))

    artefacts = {
        "eas_gantt.svg": render_schedule_svg(eas),
        "edf_gantt.svg": render_schedule_svg(edf),
        "eas_platform.svg": render_platform_svg(eas),
        "edf_platform.svg": render_platform_svg(edf),
    }
    for name, svg in artefacts.items():
        path = out_dir / name
        path.write_text(svg)
        print(f"wrote {path}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""The paper's Sec. 6.2 workload: A/V encoder, decoder, integrated system.

Schedules the three multimedia benchmarks on their paper platforms
(2x2 / 2x2 / 3x3) across all three clips, prints Table 1-3 style rows,
the computation/communication energy split, and the average-hops
statistic, and cross-checks every schedule with the replay simulator.

Run:  python examples/multimedia_system.py
"""

from repro import (
    CLIP_NAMES,
    av_decoder_ctg,
    av_encoder_ctg,
    av_integrated_ctg,
    eas_schedule,
    edf_schedule,
    mesh_2x2,
    mesh_3x3,
    simulate_schedule,
)
from repro.core.periodic import throughput_report

SYSTEMS = [
    ("A/V encoder (Table 1, 24 tasks, 2x2)", av_encoder_ctg, mesh_2x2),
    ("A/V decoder (Table 2, 16 tasks, 2x2)", av_decoder_ctg, mesh_2x2),
    ("A/V integrated (Table 3, 40 tasks, 3x3)", av_integrated_ctg, mesh_3x3),
]


def main() -> None:
    for title, build_ctg, build_acg in SYSTEMS:
        print(f"== {title} ==")
        for clip in CLIP_NAMES:
            ctg = build_ctg(clip)
            acg = build_acg()
            eas = eas_schedule(ctg, acg)
            edf = edf_schedule(ctg, acg)

            # Independent executable-witness for both schedules.
            simulate_schedule(eas)
            simulate_schedule(edf)

            savings = (
                100 * (edf.total_energy() - eas.total_energy()) / edf.total_energy()
            )
            print(
                f"  {clip:>8}: EAS {eas.total_energy():10.1f} nJ "
                f"(comp {eas.computation_energy():9.1f} / "
                f"comm {eas.communication_energy():7.1f}), "
                f"EDF {edf.total_energy():10.1f} nJ, savings {savings:4.1f}%, "
                f"hops {eas.average_hops_per_packet():.2f} vs "
                f"{edf.average_hops_per_packet():.2f}, "
                f"misses EAS={len(eas.deadline_misses())} EDF={len(edf.deadline_misses())}"
            )
        # Pipelined throughput: can the EAS schedule sustain the frame
        # rate when one instance is launched per frame period?
        report = throughput_report(eas)
        print(
            f"  pipelined: min period {report.min_period:.0f} us "
            f"-> sustainable {report.sustainable_rate(1_000_000):.0f} inst/s "
            f"(overlap factor {report.overlap_factor:.2f})"
        )
        print()


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: schedule a small application on a heterogeneous NoC.

Builds a five-task video-filter pipeline by hand, schedules it with both
the paper's EAS algorithm and the EDF baseline on a 2x2 heterogeneous
mesh, and prints the energy comparison plus an ASCII Gantt chart.

Run:  python examples/quickstart.py
"""

from repro import (
    CTG,
    CommEdge,
    Task,
    TaskCosts,
    eas_schedule,
    edf_schedule,
    mesh_2x2,
    render_gantt,
)


def build_pipeline() -> CTG:
    """capture -> filter -> (edge-detect | blur) -> merge, 25 ms deadline."""
    ctg = CTG(name="video-filter")

    def costs(base_time, power):
        # Per-PE-type (time, energy) — the 'cpu' tile is fast but hungry,
        # the 'arm' tile slow but frugal (see repro.arch.pe for factors).
        return {
            "cpu": TaskCosts(base_time * 0.45, base_time * power * 2.6),
            "dsp": TaskCosts(base_time * 0.7, base_time * power * 1.3),
            "arm": TaskCosts(base_time * 1.4, base_time * power * 0.5),
            "risc": TaskCosts(base_time * 1.0, base_time * power * 1.0),
        }

    ctg.add_task(Task("capture", costs=costs(2000, 0.9)))
    ctg.add_task(Task("filter", costs=costs(3000, 1.2)))
    ctg.add_task(Task("edges", costs=costs(2500, 1.3)))
    ctg.add_task(Task("blur", costs=costs(1800, 1.1)))
    ctg.add_task(Task("merge", costs=costs(1200, 0.8), deadline=25_000.0))

    frame = 304_128.0  # QCIF 4:2:0 frame in bits
    ctg.add_edge(CommEdge("capture", "filter", volume=frame))
    ctg.add_edge(CommEdge("filter", "edges", volume=frame / 2))
    ctg.add_edge(CommEdge("filter", "blur", volume=frame / 2))
    ctg.add_edge(CommEdge("edges", "merge", volume=frame / 4))
    ctg.add_edge(CommEdge("blur", "merge", volume=frame / 4))
    return ctg


def main() -> None:
    ctg = build_pipeline()
    acg = mesh_2x2()
    print(acg.describe())
    print()

    eas = eas_schedule(ctg, acg)
    edf = edf_schedule(ctg, acg)
    for schedule in (eas, edf):
        schedule.validate_structure()
        print(schedule.summary())

    savings = 100 * (edf.total_energy() - eas.total_energy()) / edf.total_energy()
    print(f"\nEAS saves {savings:.1f}% energy vs EDF while meeting the deadline.\n")

    print(render_gantt(eas, width=64))
    print()
    print("Task placements (EAS):")
    for name, placement in sorted(eas.task_placements.items()):
        pe = acg.pe(placement.pe)
        print(
            f"  {name:>8} -> PE{placement.pe} ({pe.type_name:>4}) "
            f"[{placement.start:8.1f}, {placement.finish:8.1f})"
        )


if __name__ == "__main__":
    main()

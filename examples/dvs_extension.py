#!/usr/bin/env python3
"""Extension: combining EAS with dynamic voltage scaling.

The paper's related work (Sec. 2) separates NoC-aware energy scheduling
(EAS) from DVS-based slack reclamation [5][11].  The two compose: after
EAS fixes mapping + ordering, remaining slack before each deadline can
still buy voltage reduction.  This example quantifies the combination
on the multimedia systems and shows the exact/heuristic context via the
branch-and-bound optimum on a small graph.

Run:  python examples/dvs_extension.py
"""

from repro import CLIP_NAMES, av_encoder_ctg, eas_schedule, edf_schedule, mesh_2x2
from repro.baselines.optimal import optimal_schedule
from repro.core.dvs import DVSConfig, apply_dvs
from repro.ctg.generator import GeneratorConfig, generate_ctg


def dvs_on_multimedia() -> None:
    print("== DVS slack reclamation on the A/V encoder (2x2 mesh) ==")
    for clip in CLIP_NAMES:
        ctg = av_encoder_ctg(clip)
        acg = mesh_2x2()
        eas = eas_schedule(ctg, acg)
        scaled, report = apply_dvs(eas)
        assert scaled.meets_deadlines
        print(
            f"  {clip:>8}: EAS {eas.total_energy():9.1f} nJ "
            f"-> EAS+DVS {scaled.total_energy():9.1f} nJ "
            f"({report.savings_pct:4.1f}% extra, {report.tasks_scaled} tasks slowed)"
        )

    # Restricting DVS capability to the low-power tiles only:
    ctg = av_encoder_ctg("foreman")
    acg = mesh_2x2()
    eas = eas_schedule(ctg, acg)
    arm_only, report = apply_dvs(eas, DVSConfig(capable_types=("arm", "risc")))
    print(
        f"\n  arm/risc-only DVS: {report.savings_pct:.1f}% extra "
        f"({report.tasks_scaled} tasks slowed) — capability placement matters."
    )


def heuristic_vs_optimal() -> None:
    print("\n== Context: EAS vs the exact optimum (7-task graph, 2x2) ==")
    ctg = generate_ctg(
        GeneratorConfig(n_tasks=7, seed=4, deadline_laxity=1.9, level_width=3.0)
    )
    acg = mesh_2x2()
    exact = optimal_schedule(ctg, acg)
    eas = eas_schedule(ctg, acg)
    edf = edf_schedule(ctg, acg)
    if exact.feasible:
        print(f"  optimal mapping:  {exact.energy:8.1f} nJ")
        print(f"  EAS heuristic:    {eas.total_energy():8.1f} nJ (x{eas.total_energy() / exact.energy:.3f})")
        print(f"  EDF baseline:     {edf.total_energy():8.1f} nJ (x{edf.total_energy() / exact.energy:.3f})")


if __name__ == "__main__":
    dvs_on_multimedia()
    heuristic_vs_optimal()

#!/usr/bin/env python3
"""Building custom platforms: topologies, routing, and energy models.

The paper's conclusion notes EAS extends beyond the 2D mesh + XY routing
baseline to any regular topology with deterministic routing.  This
example schedules the same application on:

* a 3x3 mesh with XY routing (the paper's platform),
* the same mesh with YX routing,
* a 3x3 torus (wrap-around links shorten routes),
* a honeycomb topology with deterministic shortest-path routing
  (the Hemani et al. structure the conclusion mentions),

and on meshes with different bit-energy ratios, showing how route length
and E_sbit/E_lbit shape the communication energy.

Run:  python examples/custom_platform.py
"""

from repro import (
    ACG,
    BitEnergyModel,
    HoneycombTopology,
    Mesh2D,
    Torus2D,
    eas_schedule,
    generate_ctg,
    get_routing,
)
from repro.ctg.generator import GeneratorConfig

TYPES_9 = ["cpu", "dsp", "arm", "risc", "cpu", "dsp", "arm", "risc", "dsp"]


def build_platforms():
    yield "3x3 mesh, XY routing", ACG(Mesh2D(3, 3), TYPES_9)
    yield "3x3 mesh, YX routing", ACG(Mesh2D(3, 3), TYPES_9, routing=get_routing("yx"))
    yield "3x3 torus, wrap-aware XY", ACG(Torus2D(3, 3), TYPES_9)
    yield "3x3 honeycomb, shortest-path", ACG(HoneycombTopology(3, 3), TYPES_9)
    yield (
        "3x3 mesh, link-heavy energy (E_lbit x10)",
        ACG(Mesh2D(3, 3), TYPES_9, energy_model=BitEnergyModel(e_lbit=0.0039)),
    )


def main() -> None:
    ctg = generate_ctg(
        GeneratorConfig(n_tasks=40, seed=11, deadline_laxity=1.8, level_width=5.0)
    )
    print(f"Application: {ctg.n_tasks} tasks, {ctg.n_edges} transactions\n")
    print(f"{'platform':45} {'energy (nJ)':>12} {'comm (nJ)':>10} {'hops':>5} {'miss':>4}")
    for name, acg in build_platforms():
        schedule = eas_schedule(ctg, acg)
        schedule.validate_structure()
        print(
            f"{name:45} {schedule.total_energy():12.1f} "
            f"{schedule.communication_energy():10.1f} "
            f"{schedule.average_hops_per_packet():5.2f} "
            f"{len(schedule.deadline_misses()):4d}"
        )
    print(
        "\nNote how the torus shortens routes (fewer hops, less comm energy)"
        "\nand a link-heavy energy model makes EAS pull communicating tasks"
        "\ncloser together."
    )


if __name__ == "__main__":
    main()

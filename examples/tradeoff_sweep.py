#!/usr/bin/env python3
"""The Fig. 7 experiment: energy vs required performance.

Starting at the baseline rates (40 fps encode / 67 fps decode), the
unified performance ratio scales both frame rates up, shrinking every
deadline.  EAS trades its energy savings for speed as flexibility
disappears; EDF (already performance-greedy) stays flat.  Past some
ratio the instance becomes infeasible even for repair — the printout
marks those points.

Run:  python examples/tradeoff_sweep.py
"""

from repro.evalx.experiments import run_fig7
from repro.evalx.reporting import format_figure


def main() -> None:
    ratios = [1.0, 1.1, 1.2, 1.3, 1.4, 1.5, 1.6, 1.8, 2.0]
    figure = run_fig7(ratios=ratios, clip="foreman")
    print(format_figure(figure, "Energy vs unified performance ratio (foreman, 3x3 mesh)"))
    print()

    eas = figure.series["eas"]
    finite = [v for v in eas if v == v]  # drop NaNs
    if len(finite) >= 2:
        growth = 100 * (finite[-1] / finite[0] - 1)
        print(f"EAS energy grows {growth:.1f}% from ratio {ratios[0]} to the last feasible point —")
        print("tighter constraints leave the scheduler less freedom to use frugal PEs.")
    if any(v != v for v in eas):
        first_miss = ratios[[i for i, v in enumerate(eas) if v != v][0]]
        print(f"EAS can no longer meet all deadlines from ratio {first_miss} on.")


if __name__ == "__main__":
    main()
